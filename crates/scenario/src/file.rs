//! Parser for user-authored scenario files (`--scenario-file PATH`).
//!
//! The format is line-oriented — one directive per line, `#` comments,
//! blank lines ignored — because the workspace's `serde` is a no-op
//! compatibility shim (no real serialization exists to piggyback on).
//! A file describes edits on top of a base spec:
//!
//! ```text
//! # A milder war that ends with Cogent leaving for good.
//! scenario my-reroute
//! base historical
//! summary historical but Cogent re-homes on day 12
//! set damage-attenuation 0.8
//! transit asn=174 loss=0.005 latency=0.15 ramp=54 down-after=12
//! event day=439 label=Cogent withdraws for good
//! ```
//!
//! Directives:
//!
//! | directive | effect |
//! |---|---|
//! | `scenario NAME` | sets the registry name (required) |
//! | `base NAME` | starts from a registered spec (default `historical`) |
//! | `summary TEXT` | one-line description |
//! | `set KEY VALUE` | toggles/scalars: `edge-damage`, `core-damage`, `displacement` (bool), `damage-attenuation`, `ramp-days` (f64), `start-day` (i64) |
//! | `clear LIST` | empties `transit`, `sieges`, `outages`, `curves`, `spikes`, `migrations`, `timeline`, or `second-country` |
//! | `intensity front=F\|oblast=O peak=N [step-day= step-to=] [decay-after= decay-floor= decay-tau=]` | replaces one intensity curve |
//! | `transit asn=U loss=N latency=N ramp=N [down-after=I]` | adds/replaces a transit rule (flaps reset) |
//! | `siege city=S from=I tput=N rtt=N loss=N` | adds a siege |
//! | `outage day=I asn=U fraction=N` | adds an outage |
//! | `curve city=S ramp gain=N tau=N` / `curve city=S decay after=N floor=N coeff=N tau=N clamp=N` | adds/replaces a city activity curve |
//! | `spike from=I to=I mult=N` | adds an activity spike window |
//! | `migration from=FRONT dest=CITY\|abroad fraction=N start=I window=I salt=U` | adds a migration wave |
//! | `second-country name=S scenario=S seed-salt=U scale-mult=N` | attaches a second country |
//! | `event day=I label=TEXT` | appends a timeline milestone |

use crate::spec::{
    front_by_name, CityCurve, CityOverride, CountrySpec, IntensityCurve, IntensityDecay,
    MigrationWave, OutageRule, ScenarioSpec, SiegeRule, SpikeRule, TimelineEvent, TransitRule,
};
use crate::Scenario;

/// Parses a scenario file into a spec, validating names and numbers.
/// Errors carry 1-based line numbers.
pub fn parse_scenario_file(text: &str) -> Result<ScenarioSpec, String> {
    let mut spec = Scenario::HISTORICAL.spec().clone();
    let mut name: Option<String> = None;

    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (directive, rest) = match line.split_once(char::is_whitespace) {
            Some((d, r)) => (d, r.trim()),
            None => (line, ""),
        };
        match directive {
            "scenario" => {
                if rest.is_empty() {
                    return Err(format!("line {ln}: `scenario` needs a name"));
                }
                name = Some(rest.to_string());
            }
            "base" => {
                let base = Scenario::by_name(rest).ok_or_else(|| {
                    format!(
                        "line {ln}: unknown base scenario '{rest}'; registered: {}",
                        Scenario::names().join(", ")
                    )
                })?;
                let keep_name = name.clone();
                spec = base.spec().clone();
                if let Some(n) = keep_name {
                    spec.name = n;
                }
            }
            "summary" => spec.summary = rest.to_string(),
            "set" => apply_set(&mut spec, rest).map_err(|e| format!("line {ln}: {e}"))?,
            "clear" => apply_clear(&mut spec, rest).map_err(|e| format!("line {ln}: {e}"))?,
            "intensity" => {
                apply_intensity(&mut spec, rest).map_err(|e| format!("line {ln}: {e}"))?
            }
            "transit" => {
                let kv = KeyValues::parse(rest).map_err(|e| format!("line {ln}: {e}"))?;
                let rule = TransitRule {
                    asn: kv.req_u64("asn")? as u32,
                    loss_coeff: kv.req_f64("loss")?,
                    latency_coeff: kv.req_f64("latency")?,
                    ramp_days: kv.req_f64("ramp")?,
                    flaps: Vec::new(),
                    down_after: kv.opt_i64("down-after")?,
                };
                match spec.transit.iter_mut().find(|t| t.asn == rule.asn) {
                    Some(existing) => *existing = rule,
                    None => spec.transit.push(rule),
                }
            }
            "siege" => {
                let kv = KeyValues::parse(rest).map_err(|e| format!("line {ln}: {e}"))?;
                spec.sieges.push(SiegeRule {
                    city: kv.req_city("city")?,
                    from_day: kv.req_i64("from")?,
                    tput_mult: kv.req_f64("tput")?,
                    rtt_mult: kv.req_f64("rtt")?,
                    loss_mult: kv.req_f64("loss")?,
                });
            }
            "outage" => {
                let kv = KeyValues::parse(rest).map_err(|e| format!("line {ln}: {e}"))?;
                spec.outages.push(OutageRule {
                    day: kv.req_i64("day")?,
                    asn: kv.req_u64("asn")? as u32,
                    down_fraction: kv.req_f64("fraction")?,
                });
            }
            "curve" => apply_curve(&mut spec, rest).map_err(|e| format!("line {ln}: {e}"))?,
            "spike" => {
                let kv = KeyValues::parse(rest).map_err(|e| format!("line {ln}: {e}"))?;
                spec.spikes.push(SpikeRule {
                    from: kv.req_i64("from")?,
                    to: kv.req_i64("to")?,
                    mult: kv.req_f64("mult")?,
                });
            }
            "migration" => {
                let kv = KeyValues::parse(rest).map_err(|e| format!("line {ln}: {e}"))?;
                let front_name = kv.req("from")?;
                let from_front = front_by_name(front_name)
                    .ok_or_else(|| format!("line {ln}: unknown front '{front_name}'"))?;
                let dest = kv.req("dest")?;
                let dest_city = if dest.eq_ignore_ascii_case("abroad") {
                    None
                } else {
                    let (_, city) = ndt_geo::city::city_by_name(dest)
                        .ok_or_else(|| format!("line {ln}: unknown city '{dest}'"))?;
                    Some(city.name.to_string())
                };
                spec.migrations.push(MigrationWave {
                    from_front,
                    dest_city,
                    fraction: kv.req_f64("fraction")?,
                    start_day: kv.req_i64("start")?,
                    window_days: kv.req_i64("window")?,
                    salt: kv.req_u64("salt")?,
                });
            }
            "second-country" => {
                let kv = KeyValues::parse(rest).map_err(|e| format!("line {ln}: {e}"))?;
                let scenario = kv.req("scenario")?.to_string();
                if Scenario::by_name(&scenario).is_none() {
                    return Err(format!(
                        "line {ln}: unknown second-country scenario '{scenario}'; registered: {}",
                        Scenario::names().join(", ")
                    ));
                }
                spec.second_country = Some(CountrySpec {
                    name: kv.req("name")?.to_string(),
                    scenario,
                    seed_salt: kv.req_u64("seed-salt")?,
                    scale_mult: kv.req_f64("scale-mult")?,
                });
            }
            "event" => {
                let kv = KeyValues::parse_with_tail(rest, "label")
                    .map_err(|e| format!("line {ln}: {e}"))?;
                spec.timeline.push(TimelineEvent {
                    day: kv.req_i64("day")?,
                    label: kv.req("label")?.to_string(),
                });
            }
            other => {
                return Err(format!("line {ln}: unknown directive '{other}'"));
            }
        }
    }

    let name = name.ok_or("missing `scenario NAME` directive")?;
    spec.name = name;
    Ok(spec)
}

fn apply_set(spec: &mut ScenarioSpec, rest: &str) -> Result<(), String> {
    let (key, value) = rest
        .split_once(char::is_whitespace)
        .map(|(k, v)| (k, v.trim()))
        .ok_or("`set` needs KEY VALUE")?;
    let parse_bool = |v: &str| match v {
        "true" | "on" | "yes" => Ok(true),
        "false" | "off" | "no" => Ok(false),
        _ => Err(format!("expected a bool, got '{v}'")),
    };
    match key {
        "edge-damage" => spec.edge_damage = parse_bool(value)?,
        "core-damage" => spec.core_damage = parse_bool(value)?,
        "displacement" => spec.displacement = parse_bool(value)?,
        "damage-attenuation" => {
            spec.damage_attenuation =
                value.parse().map_err(|_| format!("bad number '{value}'"))?
        }
        "ramp-days" => {
            spec.intensity.ramp_days =
                value.parse().map_err(|_| format!("bad number '{value}'"))?
        }
        "start-day" => {
            spec.intensity.start_day =
                value.parse().map_err(|_| format!("bad integer '{value}'"))?
        }
        other => return Err(format!("unknown `set` key '{other}'")),
    }
    Ok(())
}

fn apply_clear(spec: &mut ScenarioSpec, rest: &str) -> Result<(), String> {
    match rest {
        "transit" => spec.transit.clear(),
        "sieges" => spec.sieges.clear(),
        "outages" => spec.outages.clear(),
        "curves" => spec.curves.clear(),
        "spikes" => spec.spikes.clear(),
        "migrations" => spec.migrations.clear(),
        "timeline" => spec.timeline.clear(),
        "second-country" => spec.second_country = None,
        other => return Err(format!("unknown `clear` list '{other}'")),
    }
    Ok(())
}

fn apply_intensity(spec: &mut ScenarioSpec, rest: &str) -> Result<(), String> {
    let kv = KeyValues::parse(rest)?;
    let step = match (kv.opt_i64("step-day")?, kv.opt_f64("step-to")?) {
        (Some(d), Some(v)) => Some((d, v)),
        (None, None) => None,
        _ => return Err("step-day and step-to must be given together".to_string()),
    };
    let decay = match (
        kv.opt_i64("decay-after")?,
        kv.opt_f64("decay-floor")?,
        kv.opt_f64("decay-tau")?,
    ) {
        (Some(after), Some(floor), Some(tau)) => Some(IntensityDecay { after, floor, tau }),
        (None, None, None) => None,
        _ => return Err("decay-after, decay-floor, decay-tau must be given together".to_string()),
    };
    let curve = IntensityCurve { peak: kv.req_f64("peak")?, step, decay };
    if let Some(front) = kv.opt("front") {
        let f = front_by_name(front).ok_or_else(|| format!("unknown front '{front}'"))?;
        match f {
            ndt_geo::Front::North => spec.intensity.north = curve,
            ndt_geo::Front::East => spec.intensity.east = curve,
            ndt_geo::Front::South => spec.intensity.south = curve,
            ndt_geo::Front::Center => spec.intensity.center = curve,
            ndt_geo::Front::West => spec.intensity.west = curve,
            ndt_geo::Front::Occupied => spec.intensity.occupied = curve,
        }
        return Ok(());
    }
    if let Some(name) = kv.opt("oblast") {
        let oblast = ndt_geo::Oblast::by_name(name)
            .ok_or_else(|| format!("unknown oblast '{name}'"))?;
        match spec.intensity.overrides.iter_mut().find(|(o, _)| *o == oblast) {
            Some((_, c)) => *c = curve,
            None => spec.intensity.overrides.push((oblast, curve)),
        }
        return Ok(());
    }
    Err("`intensity` needs front=... or oblast=...".to_string())
}

fn apply_curve(spec: &mut ScenarioSpec, rest: &str) -> Result<(), String> {
    // The shape keyword (`ramp` / `decay`) rides along as a bare token.
    let shape = rest
        .split_whitespace()
        .find(|t| !t.contains('='))
        .ok_or("`curve` needs a shape: `ramp` or `decay`")?;
    let kv = KeyValues::parse_ignoring_bare(rest)?;
    let city = kv.req_city("city")?;
    let curve = match shape {
        "ramp" => CityCurve::Ramp { gain: kv.req_f64("gain")?, tau: kv.req_f64("tau")? },
        "decay" => CityCurve::DecayAfter {
            after: kv.req_f64("after")?,
            floor: kv.req_f64("floor")?,
            coeff: kv.req_f64("coeff")?,
            tau: kv.req_f64("tau")?,
            clamp_min: kv.req_f64("clamp")?,
        },
        other => return Err(format!("unknown curve shape '{other}'")),
    };
    match spec.curves.iter_mut().find(|c| c.city == city) {
        Some(c) => c.curve = curve,
        None => spec.curves.push(CityOverride { city, curve }),
    }
    Ok(())
}

/// `key=value` token list with typed accessors.
struct KeyValues<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> KeyValues<'a> {
    fn parse(rest: &'a str) -> Result<Self, String> {
        let mut pairs = Vec::new();
        for tok in rest.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{tok}'"))?;
            pairs.push((k, v));
        }
        Ok(KeyValues { pairs })
    }

    /// Like `parse`, but bare tokens (no `=`) are skipped instead of
    /// rejected — used by `curve`, whose shape keyword is bare.
    fn parse_ignoring_bare(rest: &'a str) -> Result<Self, String> {
        let pairs = rest
            .split_whitespace()
            .filter_map(|tok| tok.split_once('='))
            .collect();
        Ok(KeyValues { pairs })
    }

    /// Like `parse`, but everything after `tail_key=` (spaces included)
    /// belongs to that key — used by `event`, whose label is free text.
    fn parse_with_tail(rest: &'a str, tail_key: &str) -> Result<Self, String> {
        let marker = format!("{tail_key}=");
        if let Some(pos) = rest.find(&marker) {
            let head = &rest[..pos];
            let tail = rest[pos + marker.len()..].trim();
            let mut kv = Self::parse(head)?;
            kv.pairs.push((&rest[pos..pos + tail_key.len()], tail));
            Ok(kv)
        } else {
            Self::parse(rest)
        }
    }

    fn opt(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn req(&self, key: &str) -> Result<&'a str, String> {
        self.opt(key).ok_or_else(|| format!("missing {key}=..."))
    }

    fn req_f64(&self, key: &str) -> Result<f64, String> {
        self.req(key)?
            .parse()
            .map_err(|_| format!("bad number for {key}"))
    }

    fn opt_f64(&self, key: &str) -> Result<Option<f64>, String> {
        self.opt(key)
            .map(|v| v.parse().map_err(|_| format!("bad number for {key}")))
            .transpose()
    }

    fn req_i64(&self, key: &str) -> Result<i64, String> {
        self.req(key)?
            .parse()
            .map_err(|_| format!("bad integer for {key}"))
    }

    fn opt_i64(&self, key: &str) -> Result<Option<i64>, String> {
        self.opt(key)
            .map(|v| v.parse().map_err(|_| format!("bad integer for {key}")))
            .transpose()
    }

    fn req_u64(&self, key: &str) -> Result<u64, String> {
        let v = self.req(key)?;
        let parsed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            v.parse()
        };
        parsed.map_err(|_| format!("bad unsigned integer for {key}"))
    }

    /// A city name validated against the key-city catalog; stored in the
    /// catalog's canonical capitalization.
    fn req_city(&self, key: &str) -> Result<String, String> {
        let name = self.req(key)?;
        let (_, city) = ndt_geo::city::city_by_name(name)
            .ok_or_else(|| format!("unknown city '{name}'"))?;
        Ok(city.name.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_derived_scenario() {
        let text = "\
# comment
scenario test-milder
base historical
summary a milder war
set damage-attenuation 0.8
transit asn=174 loss=0.004 latency=0.1 ramp=54 down-after=12
event day=439 label=Cogent gives up for good
";
        let spec = parse_scenario_file(text).expect("parses");
        assert_eq!(spec.name, "test-milder");
        assert_eq!(spec.summary, "a milder war");
        assert_eq!(spec.damage_attenuation, 0.8);
        let cogent = spec.transit.iter().find(|t| t.asn == 174).expect("cogent");
        assert_eq!(cogent.down_after, Some(12));
        assert_eq!(cogent.flaps.len(), 0, "replacing a transit rule resets flaps");
        assert_eq!(
            spec.timeline.last().map(|e| e.label.as_str()),
            Some("Cogent gives up for good")
        );
        // Everything not edited is inherited from historical.
        assert_eq!(spec.sieges, Scenario::HISTORICAL.spec().sieges);
    }

    #[test]
    fn rejects_bad_input_with_line_numbers() {
        for (text, needle) in [
            ("set damage-attenuation 0.8", "missing `scenario NAME`"),
            ("scenario x\nbase blitz", "unknown base scenario 'blitz'"),
            ("scenario x\nfoo bar", "unknown directive 'foo'"),
            ("scenario x\nmigration from=nowhere dest=abroad fraction=0.1 start=1 window=2 salt=3", "unknown front"),
            ("scenario x\nsiege city=Atlantis from=1 tput=1 rtt=1 loss=1", "unknown city"),
            ("scenario x\ntransit asn=174 loss=0.1", "missing latency="),
        ] {
            let err = parse_scenario_file(text).expect_err(text);
            assert!(err.contains(needle), "error {err:?} should mention {needle:?}");
        }
        let err = parse_scenario_file("scenario x\nbase blitz").expect_err("bad base");
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn migration_and_second_country_validate_names() {
        let text = "\
scenario test-flow
migration from=east dest=Lviv fraction=0.2 start=422 window=10 salt=0x99
second-country name=b scenario=asymmetric-b seed-salt=0x1 scale-mult=0.5
";
        let spec = parse_scenario_file(text).expect("parses");
        assert_eq!(spec.migrations.len(), 1);
        assert_eq!(spec.migrations[0].dest_city.as_deref(), Some("Lviv"));
        assert_eq!(spec.migrations[0].salt, 0x99);
        assert_eq!(spec.second_country.as_ref().map(|c| c.scenario.as_str()), Some("asymmetric-b"));
    }

    #[test]
    fn edited_file_changes_the_fingerprint() {
        let a = parse_scenario_file("scenario t\nset damage-attenuation 0.8").expect("a");
        let b = parse_scenario_file("scenario t\nset damage-attenuation 0.7").expect("b");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
