//! The simulated NDT client population.
//!
//! Clients are the paper's hidden actors: each has a persistent address
//! (so (client, server) connections persist across periods — required by
//! Table 2 and Figure 9), a home city and access AS, per-client last-mile
//! characteristics calibrated against the paper's Table 4 prewar values,
//! and a test rate. Rates are two-class:
//!
//! * a small **heavy** class (Google-search-integrated frequent testers)
//!   whose members run several tests per day — these become the paper's
//!   top-1000 connections with ~200 tests per 54-day period;
//! * a **casual** majority with a Pareto-tailed low rate.
//!
//! Class rates are normalized so the expected national daily raw-test
//! volume matches the configured target (the paper's §5.2 corpus:
//! 852,738 tests over 108 days ≈ 7,900/day).

use ndt_geo::city::{cities_of, CityId};
use ndt_geo::Oblast;
use ndt_stats::{LogNormal, Pareto, Sampler};
use ndt_topology::{Asn, BuiltTopology, Ipv4Addr};
use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One NDT client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Client {
    pub ip: Ipv4Addr,
    pub city: CityId,
    pub oblast: Oblast,
    pub asn: Asn,
    /// Expected tests per day at full (2022) volume, before modulation.
    pub daily_rate: f64,
    /// Whether this client belongs to the heavy-tester class.
    pub heavy: bool,
    /// Last-mile access capacity, Mbps.
    pub access_mbps: f64,
    /// Last-mile base RTT contribution, milliseconds.
    pub edge_rtt_ms: f64,
    /// Last-mile base loss probability.
    pub edge_loss: f64,
    /// How strongly wartime damage hits this client's neighbourhood
    /// (log-normal, mean 1). High-exposure clients both degrade more and
    /// reroute more — the within-AS heterogeneity behind Figure 9.
    pub war_exposure: f64,
}

/// Population-generation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientPoolConfig {
    /// Total number of clients at scale 1.
    pub n_clients: usize,
    /// Fraction of clients in the heavy-tester class.
    pub heavy_fraction: f64,
    /// Target expected national raw tests per day (2022 volume).
    pub daily_raw_tests: f64,
}

impl Default for ClientPoolConfig {
    fn default() -> Self {
        Self { n_clients: 24_000, heavy_fraction: 0.058, daily_raw_tests: 7_900.0 }
    }
}

/// The full client population.
#[derive(Debug, Clone, Default)]
pub struct ClientPool {
    clients: Vec<Client>,
}

impl ClientPool {
    /// Generates the population deterministically from `rng`.
    pub fn generate<R: Rng + ?Sized>(bt: &BuiltTopology, config: &ClientPoolConfig, rng: &mut R) -> Self {
        assert!(config.n_clients > 0, "population must be non-empty");
        assert!((0.0..1.0).contains(&config.heavy_fraction), "heavy_fraction must be in [0,1)");
        let total_weight: f64 = Oblast::all().map(|o| o.prewar_weight()).sum();
        let mut clients = Vec::with_capacity(config.n_clients);
        let mut ip_counter: HashMap<Asn, u32> = HashMap::new();

        let heavy_rate = LogNormal::with_median(3.3, 0.5);
        let casual_rate = Pareto::new(0.02, 1.2);

        for oblast in Oblast::all() {
            let oblast_frac = oblast.prewar_weight() / total_weight;
            let prewar = oblast.info().paper_prewar;
            for (city_id, city) in cities_of(oblast) {
                for (asn, share) in &bt.market_shares[&oblast] {
                    let expect = config.n_clients as f64 * oblast_frac * city.weight * share;
                    // Probabilistic rounding keeps cell totals unbiased.
                    let n = expect.floor() as usize
                        + usize::from(rng.random::<f64>() < expect.fract());
                    for _ in 0..n {
                        let idx = ip_counter.entry(*asn).or_insert(0);
                        let ip = bt.client_ip(*asn, *idx);
                        *idx += 1;
                        let heavy = rng.random::<f64>() < config.heavy_fraction;
                        let daily_rate = if heavy {
                            heavy_rate.sample(rng).min(8.0)
                        } else {
                            casual_rate.sample(rng).min(1.0)
                        };
                        // Heavy testers dominate per-region means (they
                        // contribute most rows); give them the narrower
                        // access-speed dispersion of engaged broadband
                        // users so small regions' means stay estimable.
                        let access_sigma = if heavy { 0.25 } else { 0.45 };
                        clients.push(Client {
                            ip,
                            city: city_id,
                            oblast,
                            asn: *asn,
                            daily_rate,
                            heavy,
                            access_mbps: LogNormal::with_median(prewar.tput_mbps, access_sigma)
                                .sample(rng)
                                .clamp(1.0, 1_000.0),
                            edge_rtt_ms: LogNormal::with_median((prewar.min_rtt_ms * 0.6).max(0.8), 0.5)
                                .sample(rng)
                                .min(120.0),
                            edge_loss: LogNormal::with_median((prewar.loss_pct / 100.0) * 0.8, 0.6)
                                .sample(rng)
                                .clamp(1e-4, 0.2),
                            war_exposure: LogNormal::new(-0.18, 0.6).sample(rng).clamp(0.2, 4.0),
                        });
                    }
                }
            }
        }

        // Normalize rates so the expected national volume hits the target.
        let sum: f64 = clients.iter().map(|c| c.daily_rate).sum();
        if sum > 0.0 {
            let k = config.daily_raw_tests / sum;
            for c in &mut clients {
                c.daily_rate *= k;
            }
        }
        Self { clients }
    }

    /// All clients.
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndt_topology::{build_topology, TopologyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool(seed: u64) -> (BuiltTopology, ClientPool) {
        let bt = build_topology(&TopologyConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = ClientPool::generate(&bt, &ClientPoolConfig::default(), &mut rng);
        (bt, pool)
    }

    #[test]
    fn population_size_and_volume() {
        let (_, p) = pool(1);
        let n = p.len() as f64;
        assert!((n - 24_000.0).abs() / 24_000.0 < 0.05, "n = {n}");
        let daily: f64 = p.clients().iter().map(|c| c.daily_rate).sum();
        assert!((daily - 7_900.0).abs() < 1.0, "daily = {daily}");
    }

    #[test]
    fn heavy_class_dominates_top_rates() {
        let (_, p) = pool(2);
        let mut rates: Vec<(f64, bool)> = p.clients().iter().map(|c| (c.daily_rate, c.heavy)).collect();
        rates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let top_1000_heavy = rates[..1000].iter().filter(|(_, h)| *h).count();
        assert!(top_1000_heavy > 900, "only {top_1000_heavy} of top-1000 are heavy");
        // Top-1000 should produce on the order of 200 tests per 54-day
        // period (Table 2's tests/connection for 2022).
        let top_mean: f64 = rates[..1000].iter().map(|(r, _)| r * 54.0).sum::<f64>() / 1000.0;
        assert!((140.0..280.0).contains(&top_mean), "top-1000 tests/period = {top_mean}");
    }

    #[test]
    fn oblast_shares_follow_table4_weights() {
        let (_, p) = pool(3);
        let kyiv = p.clients().iter().filter(|c| c.oblast == Oblast::KyivCity).count() as f64;
        let share = kyiv / p.len() as f64;
        // Table 4: Kyiv City is 11216/35488 ≈ 31.6% of prewar tests.
        assert!((share - 0.316).abs() < 0.03, "Kyiv share = {share}");
        let sevastopol = p.clients().iter().filter(|c| c.oblast == Oblast::Sevastopol).count();
        assert!(sevastopol > 0, "even the smallest region has clients");
    }

    #[test]
    fn client_ips_are_unique_and_resolve() {
        let (bt, p) = pool(4);
        let mut ips: Vec<u32> = p.clients().iter().map(|c| c.ip.0).collect();
        ips.sort_unstable();
        let before = ips.len();
        ips.dedup();
        assert_eq!(ips.len(), before, "duplicate client IPs");
        for c in p.clients().iter().take(50) {
            assert_eq!(bt.topology.prefixes.lookup(c.ip), Some(c.asn));
        }
    }

    #[test]
    fn edge_characteristics_track_oblast_baselines() {
        let (_, p) = pool(5);
        let mean_access = |o: Oblast| {
            let v: Vec<f64> =
                p.clients().iter().filter(|c| c.oblast == o).map(|c| c.access_mbps).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        // Kyiv City prewar tput 61.71 vs Luhansk 13.87: access capacities
        // should preserve the ordering with a clear gap.
        assert!(mean_access(Oblast::KyivCity) > 1.8 * mean_access(Oblast::Luhansk));
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = pool(42);
        let (_, b) = pool(42);
        assert_eq!(a.clients()[..100], b.clients()[..100]);
        assert_eq!(a.len(), b.len());
    }
}
