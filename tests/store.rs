//! Columnar-store acceptance suite: the load-bearing invariant is that
//! `report --from-store` is **byte-identical** to the in-memory pipeline
//! at every `--scale`/`--threads`/`--faults` combination, and that the
//! store detects its own corruption — quarantining damaged shards and
//! degrading the report (coverage footers, partial-success records)
//! instead of producing a silently different one.

use std::path::PathBuf;
use std::process::{Command, Output};

use ukraine_ndt::mlab::FaultPlan;
use ukraine_ndt::prelude::*;
use ukraine_ndt::runner::{
    run_report, run_report_from_store, run_store_generate, ExecPolicy, StageStatus, QUARANTINE_DIR,
    STORE_MANIFEST,
};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ndt-store-accept-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

fn sim(scale: f64, threads: usize, faults: FaultPlan) -> SimConfig {
    SimConfig { scale, seed: 20220224, threads, faults, ..SimConfig::default() }
}

/// In-memory pipeline config that never touches disk.
fn mem_cfg(sim: SimConfig, out: &std::path::Path) -> PipelineConfig {
    let mut cfg = PipelineConfig::new(sim, out);
    cfg.checkpoints = false;
    cfg
}

/// The acceptance grid: report-from-store must be byte-identical to the
/// in-memory report across scales × threads × fault plans. Scales are
/// the issue's {1, 4} in test units (0.01, 0.04) so the grid stays
/// minutes, not hours; nothing in the store layer branches on scale.
#[test]
fn report_from_store_is_byte_identical_across_the_grid() {
    let d = tmpdir("grid");
    for (si, &scale) in [0.01, 0.04].iter().enumerate() {
        for (ti, &threads) in [1usize, 4].iter().enumerate() {
            for (fi, faults) in [FaultPlan::NONE, FaultPlan::MODERATE].into_iter().enumerate() {
                let tag = format!("s{si}t{ti}f{fi}");
                let cfg = mem_cfg(sim(scale, threads, faults), &d.join(format!("out-{tag}")));
                let in_memory = run_report(&cfg).expect("in-memory report");
                assert!(in_memory.is_complete(), "{tag}: {:?}", in_memory.failed());

                let store_dir = d.join(format!("store-{tag}"));
                let (summary, _) = run_store_generate(&cfg, &store_dir).expect("store generate");
                // The <=50% acceptance bound applies to the default
                // (fault-free) corpus; fault plans thin the rows, which
                // raises the per-group overhead share a few points.
                let limit_pct = if fi == 0 { 50 } else { 60 };
                assert!(
                    summary.stats.bytes_file * 100 <= summary.stats.bytes_raw * limit_pct,
                    "{tag}: encoded {} bytes must be <= {limit_pct}% of raw {}",
                    summary.stats.bytes_file,
                    summary.stats.bytes_raw
                );
                let from_store =
                    run_report_from_store(&store_dir, ExecPolicy::default(), &VfsHandle::real()).expect("store report");
                assert!(from_store.is_complete(), "{tag}: {:?}", from_store.failed());
                assert_eq!(in_memory.report, from_store.report, "{tag}: report text differs");
                assert_eq!(in_memory.artifacts, from_store.artifacts, "{tag}: artifacts differ");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&d);
}

/// A complete store resumes every shard without rewriting a byte, and
/// still reproduces the identical report.
#[test]
fn resumed_store_rewrites_nothing_and_reports_identically() {
    let d = tmpdir("resume");
    let mut cfg = mem_cfg(sim(0.01, 0, FaultPlan::NONE), &d.join("out"));
    let store_dir = d.join("store");
    let (_, first) = run_store_generate(&cfg, &store_dir).expect("first generate");
    assert!(first.iter().all(|r| r.status == StageStatus::Computed));
    let baseline = run_report_from_store(&store_dir, ExecPolicy::default(), &VfsHandle::real()).expect("report");

    cfg.resume = true;
    let (summary, second) = run_store_generate(&cfg, &store_dir).expect("resumed generate");
    assert!(
        second.iter().all(|r| r.status == StageStatus::Resumed),
        "complete store resumes all shards: {second:?}"
    );
    assert_eq!(summary.stats.rows, 0, "nothing rewritten");
    let again = run_report_from_store(&store_dir, ExecPolicy::default(), &VfsHandle::real()).expect("report");
    assert_eq!(baseline.report, again.report);
    assert_eq!(baseline.artifacts, again.artifacts);
    let _ = std::fs::remove_dir_all(&d);
}

/// A flipped byte inside a shard never panics and never silently alters
/// the report: the damaged shard is quarantined, the report recomputes
/// over the survivors with the missing days called out in its coverage
/// footer, and the run carries a failed `store:` record (exit code 3 at
/// the CLI).
#[test]
fn corrupted_shard_is_quarantined_and_the_report_degrades() {
    let d = tmpdir("corrupt");
    let cfg = mem_cfg(sim(0.01, 0, FaultPlan::NONE), &d.join("out"));
    let store_dir = d.join("store");
    run_store_generate(&cfg, &store_dir).expect("generate");
    let clean = run_report_from_store(&store_dir, ExecPolicy::default(), &VfsHandle::real())
        .expect("clean report");
    assert!(clean.is_complete());

    let shard = std::fs::read_dir(&store_dir)
        .expect("readdir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "ndts"))
        .expect("a shard file");
    let mut bytes = std::fs::read(&shard).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&shard, &bytes).expect("write corrupted shard");

    let degraded = run_report_from_store(&store_dir, ExecPolicy::default(), &VfsHandle::real())
        .expect("corruption degrades the report, it does not kill it");
    let failed = degraded.failed();
    assert_eq!(failed.len(), 1, "exactly the damaged shard fails: {failed:?}");
    assert!(failed[0].name.starts_with("store:shard-"), "failure names the shard: {failed:?}");
    assert!(
        degraded.report.contains("day(s) missing from input"),
        "missing days surface in the coverage footer"
    );
    assert_ne!(clean.report, degraded.report, "the degradation must be visible");

    // Both files of the damaged shard moved into quarantine; the
    // surviving shards stayed in place.
    let quarantined: Vec<String> = std::fs::read_dir(store_dir.join(QUARANTINE_DIR))
        .expect("quarantine dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(quarantined.len(), 2, "unified + traces file: {quarantined:?}");

    // A resume sees the quarantined shard as missing and regenerates it,
    // after which the report is byte-identical to the original clean one.
    let mut resume_cfg = cfg;
    resume_cfg.resume = true;
    let (_, records) = run_store_generate(&resume_cfg, &store_dir).expect("resume generate");
    assert!(
        records.iter().any(|r| r.status == StageStatus::Computed),
        "quarantined shard must be regenerated, not resumed: {records:?}"
    );
    let healed = run_report_from_store(&store_dir, ExecPolicy::default(), &VfsHandle::real())
        .expect("repaired store must report cleanly");
    assert!(healed.is_complete());
    assert_eq!(clean.report, healed.report, "healed store reproduces the clean report");
    let _ = std::fs::remove_dir_all(&d);
}

/// Deleting the manifest makes the store unreadable with a clear error.
#[test]
fn missing_manifest_is_a_clear_error() {
    let d = tmpdir("manifest");
    let cfg = mem_cfg(sim(0.01, 0, FaultPlan::NONE), &d.join("out"));
    let store_dir = d.join("store");
    run_store_generate(&cfg, &store_dir).expect("generate");
    std::fs::remove_file(store_dir.join(STORE_MANIFEST)).expect("remove manifest");
    let err = run_report_from_store(&store_dir, ExecPolicy::default(), &VfsHandle::real()).expect_err("no manifest");
    assert!(err.to_string().contains("manifest"), "unhelpful error: {err}");
    let _ = std::fs::remove_dir_all(&d);
}

// ---- CLI-level equivalence (subprocess) --------------------------------

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ukraine-ndt"))
}

fn run_cli(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

/// End-to-end through the binary: `generate --format columnar` then
/// `report --from-store` prints exactly the same report as `report`.
#[test]
fn cli_from_store_report_matches_cli_report() {
    let d = tmpdir("cli");
    let store_dir = d.join("store");
    let metrics = d.join("metrics.json");
    let common = ["--scale", "0.01", "--seed", "7"];

    let direct = run_cli(&[&["report"], &common[..]].concat());
    assert_eq!(direct.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&direct.stderr));

    let gen = run_cli(
        &[
            &["generate", "--format", "columnar", "--out", &store_dir.display().to_string()],
            &common[..],
            &["--metrics", &metrics.display().to_string()],
        ]
        .concat(),
    );
    assert_eq!(gen.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&gen.stderr));

    let from_store = run_cli(&["report", "--from-store", &store_dir.display().to_string()]);
    assert_eq!(
        from_store.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&from_store.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&direct.stdout),
        String::from_utf8_lossy(&from_store.stdout),
        "CLI report must be byte-identical"
    );

    // The metrics artifact carries the encoded-vs-raw accounting.
    let metrics_json = std::fs::read_to_string(&metrics).expect("metrics artifact");
    for key in ["store.bytes_file", "store.bytes_raw", "store.encoded_pct_of_raw"] {
        assert!(metrics_json.contains(key), "metrics artifact missing {key}");
    }
    let _ = std::fs::remove_dir_all(&d);
}
