//! Dataset wrapper: the two "BigQuery tables" plus period helpers.

use ndt_bq::{Query, Table, Value};
use ndt_conflict::Period;
use ndt_mlab::{Dataset, Scamper1Row, SimConfig, Simulator};

/// The generated corpus, ready for analysis.
pub struct StudyData {
    /// Raw dataset (scamper rows consumed natively by the §5 analyses).
    pub raw: Dataset,
    /// `ndt.unified_download` as a queryable table (§4 analyses).
    pub unified: Table,
}

impl StudyData {
    /// Generates a corpus with the given simulator configuration.
    pub fn generate(config: SimConfig) -> Self {
        let raw = Simulator::new(config).run();
        Self::from_dataset(raw)
    }

    /// Wraps an already-generated dataset.
    pub fn from_dataset(raw: Dataset) -> Self {
        let unified = raw.unified_table();
        Self { raw, unified }
    }

    /// Unified rows within a period.
    pub fn period(&self, p: Period) -> Query<'_> {
        let (s, e) = p.day_range();
        self.unified.query().filter_int_range("day", s, e)
    }

    /// Unified rows of one labeled city within a period (Table 1's slices).
    pub fn city_period(&self, city: &str, p: Period) -> Query<'_> {
        self.period(p).filter_eq("city", &Value::from(city))
    }

    /// Unified rows of one labeled region within a period.
    pub fn oblast_period(&self, oblast: &str, p: Period) -> Query<'_> {
        self.period(p).filter_eq("oblast", &Value::from(oblast))
    }

    /// Scamper rows within a period.
    pub fn traces_in(&self, p: Period) -> impl Iterator<Item = &Scamper1Row> {
        let (s, e) = p.day_range();
        self.raw.traces.iter().filter(move |r| (s..e).contains(&r.day))
    }

    /// Total unified rows.
    pub fn unified_len(&self) -> usize {
        self.unified.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_support::shared_small;

    #[test]
    fn periods_partition_unified_rows() {
        let data = shared_small();
        let total: usize = Period::ALL.iter().map(|p| data.period(*p).count()).sum();
        assert_eq!(total, data.unified_len(), "every row belongs to exactly one period");
    }

    #[test]
    fn city_slices_are_subsets() {
        let data = shared_small();
        let kyiv = data.city_period("Kyiv", Period::Prewar2022).count();
        let all = data.period(Period::Prewar2022).count();
        assert!(kyiv > 0 && kyiv < all);
    }

    #[test]
    fn traces_filter_by_day() {
        let data = shared_small();
        let (s, e) = Period::Wartime2022.day_range();
        assert!(data.traces_in(Period::Wartime2022).all(|r| (s..e).contains(&r.day)));
        assert!(data.traces_in(Period::Wartime2022).next().is_some());
    }
}

/// Shared fixtures so the per-experiment test modules don't each pay for a
/// fresh simulation.
pub mod test_support {
    use super::*;
    use std::sync::OnceLock;

    static SMALL: OnceLock<StudyData> = OnceLock::new();
    static MEDIUM: OnceLock<StudyData> = OnceLock::new();

    /// A ~6%-volume corpus, shared by fast unit tests.
    pub fn shared_small() -> &'static StudyData {
        SMALL.get_or_init(|| StudyData::generate(SimConfig::small(1234)))
    }

    /// A ~20%-volume corpus for analyses that need statistical depth
    /// (Welch stars, top-1000 connections).
    pub fn shared_medium() -> &'static StudyData {
        MEDIUM.get_or_init(|| {
            StudyData::generate(SimConfig { scale: 0.2, seed: 99, ..SimConfig::default() })
        })
    }
}
