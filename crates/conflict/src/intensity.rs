//! Per-oblast daily conflict-intensity curves.
//!
//! Intensity is a dimensionless `[0, 1]` scalar shaping *when* damage
//! happens; the *magnitude* of damage is calibrated separately per oblast in
//! [`crate::damage`]. The curve shapes live in a
//! [`ndt_scenario::ScenarioSpec`]'s [`ndt_scenario::IntensitySpec`]: zero
//! before the scenario start, a sharp onset ramp, per-front base curves and
//! per-oblast overrides. The built-in `historical` spec encodes the §2
//! narrative (Kyiv-axis step-down after April 3, Kharkiv surge after
//! March 14) bit-for-bit identically to the original closed-form code; the
//! spec-free functions here evaluate it for the calibration tests and any
//! caller that wants "the paper's war".

use ndt_scenario::{Scenario, ScenarioSpec};
use ndt_geo::Oblast;

/// Conflict intensity for `oblast` on `day` under a scenario spec.
pub fn intensity_for(spec: &ScenarioSpec, oblast: Oblast, day: i64) -> f64 {
    spec.intensity.at(oblast, day)
}

/// Conflict intensity under the historical scenario (day index since
/// 2021-01-01).
pub fn intensity(oblast: Oblast, day: i64) -> f64 {
    Scenario::HISTORICAL.spec().intensity.at(oblast, day)
}

/// Intensity normalized so its mean over the wartime period is 1 for the
/// oblast; 0 before the invasion. Damage targets calibrated as *period
/// means* are modulated by this, so their wartime averages come out right
/// while preserving the ramp/withdrawal dynamics. Historical scenario;
/// scenario-parameterized callers use [`crate::damage::DamageModel`],
/// which precomputes the per-oblast means.
pub fn damage_scale(oblast: Oblast, day: i64) -> f64 {
    let spec = Scenario::HISTORICAL.spec();
    if day < spec.intensity.start_day {
        return 0.0;
    }
    let mean = wartime_mean_intensity(oblast);
    if mean <= 0.0 {
        return 0.0;
    }
    spec.intensity.at(oblast, day) / mean
}

/// Mean historical intensity over the 54 wartime days.
pub fn wartime_mean_intensity(oblast: Oblast) -> f64 {
    Scenario::HISTORICAL.spec().intensity.wartime_mean(oblast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::{dates, Period};

    #[test]
    fn zero_before_invasion() {
        for o in Oblast::all() {
            assert_eq!(intensity(o, 0), 0.0);
            assert_eq!(intensity(o, dates::INVASION.day_index() - 1), 0.0);
            assert_eq!(damage_scale(o, 100), 0.0);
        }
    }

    #[test]
    fn fronts_order_by_intensity_at_peak() {
        let d = dates::MAX_OCCUPATION.day_index();
        let east = intensity(Oblast::Kharkiv, d);
        let north = intensity(Oblast::KyivCity, d);
        let south = intensity(Oblast::Kherson, d);
        let center = intensity(Oblast::Poltava, d);
        let west = intensity(Oblast::Lviv, d);
        assert!(east > north && north > south && south > center && center > west);
        assert!(west > 0.0);
    }

    #[test]
    fn kyiv_steps_down_after_withdrawal() {
        let before = intensity(Oblast::KyivCity, dates::KYIV_REGAINED.day_index() - 1);
        let after = intensity(Oblast::KyivCity, dates::KYIV_REGAINED.day_index() + 10);
        assert!(after < before * 0.6, "before {before}, after {after}");
        assert!(after > 0.0, "still some military action");
    }

    #[test]
    fn kharkiv_surges_after_shelling() {
        let before = intensity(Oblast::Kharkiv, dates::KHARKIV_SHELLING.day_index() - 1);
        let after = intensity(Oblast::Kharkiv, dates::KHARKIV_SHELLING.day_index());
        assert!(after > before);
    }

    #[test]
    fn damage_scale_has_unit_wartime_mean() {
        let (s, e) = Period::Wartime2022.day_range();
        for o in [Oblast::KyivCity, Oblast::Kharkiv, Oblast::Lviv, Oblast::Kherson] {
            let mean = (s..e).map(|d| damage_scale(o, d)).sum::<f64>() / (e - s) as f64;
            assert!((mean - 1.0).abs() < 1e-9, "{o}: mean {mean}");
        }
    }

    #[test]
    fn intensity_bounded() {
        for o in Oblast::all() {
            for d in 360..480 {
                let v = intensity(o, d);
                assert!((0.0..=1.0).contains(&v), "{o} day {d}: {v}");
            }
        }
    }

    #[test]
    fn spec_evaluation_matches_the_original_closed_form() {
        // The pre-refactor closed-form model, kept verbatim as the oracle.
        fn oracle(oblast: Oblast, day: i64) -> f64 {
            use ndt_geo::Front;
            let invasion = dates::INVASION.day_index();
            if day < invasion {
                return 0.0;
            }
            let t = (day - invasion) as f64;
            let ramp = (t / 5.0).min(1.0);
            let base = match oblast.front() {
                Front::North => {
                    let peak = 0.9;
                    let after_withdrawal = 0.35;
                    if day < dates::KYIV_REGAINED.day_index() {
                        peak
                    } else {
                        let dt = (day - dates::KYIV_REGAINED.day_index()) as f64;
                        after_withdrawal + (peak - after_withdrawal) * (-dt / 3.0).exp()
                    }
                }
                Front::East => {
                    let mut v: f64 = 0.95;
                    if oblast == Oblast::Kharkiv && day >= dates::KHARKIV_SHELLING.day_index() {
                        v = 1.0;
                    }
                    v
                }
                Front::South => {
                    if oblast == Oblast::Odessa {
                        0.30
                    } else {
                        0.80
                    }
                }
                Front::Center => 0.20,
                Front::West => {
                    if oblast == Oblast::Lviv {
                        0.08
                    } else {
                        0.05
                    }
                }
                Front::Occupied => 0.10,
            };
            base * ramp
        }
        for o in Oblast::all() {
            for d in 400..480 {
                let spec = intensity(o, d);
                let want = oracle(o, d);
                assert!(
                    spec.to_bits() == want.to_bits(),
                    "{o} day {d}: spec {spec} oracle {want}"
                );
            }
        }
    }
}
