//! Benches for the future-work extensions: router alias resolution and the
//! date-level change-point analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use ndt_analysis::{ext_alias, ext_events};
use ndt_bench::shared_data;
use ndt_topology::{build_topology, AliasResolver, TopologyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    let data = shared_data();
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));

    g.bench_function("ext_alias_path_diversity", |b| {
        b.iter(|| black_box(ext_alias::compute(black_box(data), 1000)))
    });
    g.bench_function("ext_events_change_points", |b| {
        b.iter(|| black_box(ext_events::compute(black_box(data))))
    });

    // Raw resolver cost over the whole topology's interfaces.
    let bt = build_topology(&TopologyConfig::default());
    let interfaces: Vec<_> =
        bt.topology.links().iter().flat_map(|l| [l.a_if, l.b_if]).collect();
    for (label, recall) in [("perfect", 1.0), ("lossy", 0.7)] {
        let resolver = AliasResolver::new(recall);
        g.bench_function(format!("alias_resolve_{label}"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(resolver.resolve(&bt.topology, black_box(&interfaces), &mut rng)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
