//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's bench targets compiling and runnable without
//! crates.io access. `cargo bench` runs every registered closure a handful
//! of times and prints a single mean wall-clock figure — a smoke benchmark,
//! not a statistical one. Swap the real criterion back in for publication
//! numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("[bench group] {name}");
        BenchmarkGroup { iters: 3 }
    }

    /// Runs one benchmark outside a group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), 3, f);
        self
    }
}

/// A named group with (ignored) tuning knobs matching criterion's API.
#[derive(Debug)]
pub struct BenchmarkGroup {
    iters: u64,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub keeps its own tiny count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.iters, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters: u64, mut f: F) {
    let mut b = Bencher { total: Duration::ZERO, runs: 0, iters };
    f(&mut b);
    let mean = if b.runs > 0 { b.total / b.runs as u32 } else { Duration::ZERO };
    eprintln!("  {name}: {mean:?} mean over {} run(s)", b.runs);
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    runs: u64,
    iters: u64,
}

impl Bencher {
    /// Times `f` over the stub's fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.runs += 1;
        }
    }
}

/// Registers bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
