//! Figure 2: the national daily time series of the four NDT metrics for the
//! 2022 study window and the 2021 baseline, written as CSV for plotting.
//!
//! ```sh
//! cargo run --release --example national_timeline > fig2.csv
//! ```

use ukraine_ndt::analysis::fig2_national;
use ukraine_ndt::prelude::*;

fn main() {
    let data = StudyData::generate(SimConfig { scale: 0.15, seed: 7, ..SimConfig::default() });
    let fig2 = fig2_national::compute(&data).expect("clean corpus computes");

    // The CSV goes to stdout; a human-readable summary goes to stderr so
    // `> fig2.csv` captures a clean file.
    let invasion = Date::new(2022, 2, 24).day_index();
    let pre = |f: fn(&fig2_national::DayPoint) -> f64| fig2.mean_2022(invasion - 54, invasion, f);
    let war = |f: fn(&fig2_national::DayPoint) -> f64| fig2.mean_2022(invasion, invasion + 54, f);
    eprintln!("national daily means, prewar → wartime:");
    eprintln!("  min RTT : {:7.2} → {:7.2} ms", pre(|p| p.mean_min_rtt_ms), war(|p| p.mean_min_rtt_ms));
    eprintln!("  tput    : {:7.2} → {:7.2} Mbps", pre(|p| p.mean_tput_mbps), war(|p| p.mean_tput_mbps));
    eprintln!("  loss    : {:7.3} → {:7.3} %", 100.0 * pre(|p| p.mean_loss), 100.0 * war(|p| p.mean_loss));
    print!("{}", fig2.to_csv());
}
