//! `ukraine-ndt` — command-line driver for the reproduction.
//!
//! ```text
//! ukraine-ndt report   [--scale S] [--seed N] [--scenario NAME] [--faults PLAN]
//! ukraine-ndt export   [--scale S] [--seed N] [--scenario NAME] [--faults PLAN] [--out DIR]
//! ukraine-ndt generate [--scale S] [--seed N] [--scenario NAME] [--faults PLAN] [--out DIR]
//! ukraine-ndt map      [--date YYYY-MM-DD]
//! ukraine-ndt topo     [--out DIR]          # Graphviz dot of the AS graph
//! ```
//!
//! Scenarios: `historical` (default), `no-war`, `edge-only`, `core-only`.
//! Fault plans: `none` (default), `light`, `moderate`, `severe`,
//! `sidecar-blackout` — deterministic platform-fault injection; degraded
//! results carry coverage annotations instead of failing.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use ukraine_ndt::analysis::full_report;
use ukraine_ndt::conflict::calendar::dates;
use ukraine_ndt::mlab::Scenario;
use ukraine_ndt::prelude::*;

struct Options {
    scale: f64,
    seed: u64,
    scenario: Scenario,
    faults: FaultPlan,
    out: PathBuf,
    date: Date,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: 0.15,
            seed: 2022,
            scenario: Scenario::Historical,
            faults: FaultPlan::NONE,
            out: PathBuf::from("out"),
            date: dates::MAX_OCCUPATION,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ukraine-ndt <report|export|generate|map> \
         [--scale S] [--seed N] [--scenario historical|no-war|edge-only|core-only] \
         [--faults none|light|moderate|severe|sidecar-blackout] \
         [--out DIR] [--date YYYY-MM-DD]; commands: report export generate map topo"
    );
    ExitCode::FAILURE
}

fn parse_date(s: &str) -> Option<Date> {
    let mut it = s.split('-');
    let year: i32 = it.next()?.parse().ok()?;
    let month: u8 = it.next()?.parse().ok()?;
    let day: u8 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    // Date::new still validates month lengths; a bad day like Feb 30 is a
    // user error worth a clean message, not a panic.
    std::panic::catch_unwind(|| Date::new(year, month, day)).ok()
}

fn parse(args: &[String]) -> Option<(String, Options)> {
    let command = args.first()?.clone();
    let mut opts = Options::default();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1)?;
        match flag {
            "--scale" => opts.scale = value.parse().ok().filter(|v| *v > 0.0)?,
            "--seed" => opts.seed = value.parse().ok()?,
            "--faults" => opts.faults = FaultPlan::by_name(value)?,
            "--out" => opts.out = PathBuf::from(value),
            "--date" => opts.date = parse_date(value)?,
            "--scenario" => {
                opts.scenario = match value.as_str() {
                    "historical" => Scenario::Historical,
                    "no-war" => Scenario::NoWar,
                    "edge-only" => Scenario::EdgeDamageOnly,
                    "core-only" => Scenario::CoreDamageOnly,
                    _ => return None,
                }
            }
            _ => return None,
        }
        i += 2;
    }
    Some((command, opts))
}

fn generate(opts: &Options) -> StudyData {
    eprintln!(
        "generating corpus: scale {}, seed {}, scenario {:?}, faults {} ...",
        opts.scale,
        opts.seed,
        opts.scenario,
        if opts.faults.is_none() { "none" } else { "injected" }
    );
    StudyData::generate(SimConfig {
        scale: opts.scale,
        seed: opts.seed,
        scenario: opts.scenario,
        faults: opts.faults,
        ..SimConfig::default()
    })
}

fn cmd_report(opts: &Options) -> Result<(), NdtError> {
    let data = generate(opts);
    println!("{}", full_report(&data)?.render());
    Ok(())
}

fn cmd_export(opts: &Options) -> Result<(), NdtError> {
    let data = generate(opts);
    let r = full_report(&data)?;
    fs::create_dir_all(&opts.out)?;
    let write = |name: &str, content: String| -> std::io::Result<()> {
        fs::write(opts.out.join(name), content)
    };
    write("fig1_activity_map.txt", r.fig1.render())?;
    write("fig2_national_timeline.csv", r.fig2.to_csv())?;
    write("fig3_oblast_changes.csv", r.fig3.to_csv())?;
    write("fig4_city_counts.csv", r.fig4.to_csv())?;
    write("fig5_border_heatmap.txt", r.fig5.render())?;
    write("fig6_as199995.csv", r.fig6.to_csv())?;
    write("fig7_8_distributions.csv", r.fig7_8.to_csv())?;
    write("fig9_path_performance.csv", r.fig9.to_csv())?;
    write("table1_cities.txt", r.table1.render())?;
    write("table2_path_diversity.txt", r.table2.render())?;
    write("table3_as_changes.txt", r.table3.render())?;
    write("table4_oblast.txt", r.table4.render())?;
    write("table5_as_detail.txt", r.tables5_6.render_table5())?;
    write("table6_as_pvalues.txt", r.tables5_6.render_table6())?;
    write("ext_alias_resolution.txt", r.ext_alias.render())?;
    write("ext_event_alignment.txt", r.ext_events.render())?;
    write("ext_robustness.txt", r.ext_robustness.render())?;
    eprintln!("wrote 17 artifacts to {}", opts.out.display());
    Ok(())
}

fn cmd_generate(opts: &Options) -> std::io::Result<()> {
    let data = generate(opts);
    fs::create_dir_all(&opts.out)?;
    // unified_download as CSV.
    let mut unified = String::from("day,client_ip,server_ip,client_asn,oblast,city,tput_mbps,min_rtt_ms,loss_rate\n");
    for r in &data.raw.ndt {
        unified.push_str(&format!(
            "{},{},{},{},{},{},{:.4},{:.4},{:.6}\n",
            r.day,
            r.client_ip,
            r.server_ip,
            r.client_asn.0,
            r.oblast.map(|o| o.name()).unwrap_or(""),
            r.city.map(|c| c.get().name).unwrap_or(""),
            r.mean_tput_mbps,
            r.min_rtt_ms,
            r.loss_rate
        ));
    }
    fs::write(opts.out.join("unified_download.csv"), unified)?;
    // scamper rows as CSV (AS path joined with '-').
    let mut traces = String::from("day,client_ip,server_ip,path_fingerprint,router_fingerprint,border_from,border_to,as_path,tput_mbps,min_rtt_ms,loss_rate\n");
    for r in &data.raw.traces {
        let as_path: Vec<String> = r.as_path.iter().map(|a| a.0.to_string()).collect();
        traces.push_str(&format!(
            "{},{},{},{:016x},{:016x},{},{},{},{:.4},{:.4},{:.6}\n",
            r.day,
            r.client_ip,
            r.server_ip,
            r.path_fingerprint,
            r.router_fingerprint,
            r.border.map(|(b, _)| b.0.to_string()).unwrap_or_default(),
            r.border.map(|(_, u)| u.0.to_string()).unwrap_or_default(),
            as_path.join("-"),
            r.mean_tput_mbps,
            r.min_rtt_ms,
            r.loss_rate
        ));
    }
    fs::write(opts.out.join("scamper1.csv"), traces)?;
    eprintln!(
        "wrote {} unified rows and {} traceroute rows to {}",
        data.raw.ndt.len(),
        data.raw.traces.len(),
        opts.out.display()
    );
    Ok(())
}

fn cmd_topo(opts: &Options) -> std::io::Result<()> {
    let bt = build_topology(&TopologyConfig::default());
    fs::create_dir_all(&opts.out)?;
    let path = opts.out.join("topology.dot");
    fs::write(&path, ukraine_ndt::topology::to_dot(&bt.topology, false))?;
    eprintln!("wrote {} (render with: dot -Tsvg {} -o topology.svg)", path.display(), path.display());
    Ok(())
}

fn cmd_map(opts: &Options) {
    let map = ukraine_ndt::analysis::fig1_map::compute(opts.date.day_index());
    println!("{}", map.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_defaults() {
        let (cmd, o) = parse(&args(&["report"])).expect("parses");
        assert_eq!(cmd, "report");
        assert_eq!(o.scale, 0.15);
        assert_eq!(o.scenario, Scenario::Historical);
        assert!(o.faults.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let (cmd, o) = parse(&args(&[
            "export", "--scale", "0.5", "--seed", "9", "--scenario", "edge-only", "--faults",
            "moderate", "--out", "/tmp/x", "--date", "2022-03-10",
        ]))
        .expect("parses");
        assert_eq!(cmd, "export");
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.seed, 9);
        assert_eq!(o.scenario, Scenario::EdgeDamageOnly);
        assert_eq!(o.faults, FaultPlan::MODERATE);
        assert_eq!(o.out, PathBuf::from("/tmp/x"));
        assert_eq!(o.date, Date::new(2022, 3, 10));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args(&[])).is_none());
        assert!(parse(&args(&["report", "--scale"])).is_none(), "missing value");
        assert!(parse(&args(&["report", "--scale", "-1"])).is_none(), "negative scale");
        assert!(parse(&args(&["report", "--scenario", "apocalypse"])).is_none());
        assert!(parse(&args(&["report", "--faults", "apocalypse"])).is_none());
        assert!(parse(&args(&["report", "--date", "2022-13-01"])).is_none());
        assert!(parse(&args(&["report", "--date", "2022-02-30"])).is_none());
        assert!(parse(&args(&["report", "--bogus", "x"])).is_none());
    }

    #[test]
    fn date_parsing() {
        assert_eq!(parse_date("2022-02-24"), Some(Date::new(2022, 2, 24)));
        assert!(parse_date("2022-02").is_none());
        assert!(parse_date("2022-02-24-01").is_none());
        assert!(parse_date("abc").is_none());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, opts)) = parse(&args) else {
        return usage();
    };
    let result: Result<(), NdtError> = match command.as_str() {
        "report" => cmd_report(&opts),
        "export" => cmd_export(&opts),
        "generate" => cmd_generate(&opts).map_err(NdtError::from),
        "map" => {
            cmd_map(&opts);
            Ok(())
        }
        "topo" => cmd_topo(&opts).map_err(NdtError::from),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
