//! # ndt-obs
//!
//! Observability for the reproduction pipeline: a measurement system must
//! measure itself. This crate provides the substrate the runner, the
//! simulator, the topology builder and every analysis stage report into:
//!
//! * **Counters and gauges** ([`incr`], [`set_gauge`]) — named, monotonic
//!   work counters ("tests simulated", "rows dropped: non-finite") and
//!   point-in-time gauges ("topology.links"). These are *always* recorded:
//!   hot paths count into plain-integer structs and merge once per stage
//!   (see `ndt-mlab`'s per-worker counters), so the cost is a handful of
//!   map updates per pipeline stage. Counter sums are commutative, which
//!   makes them **bit-identical across thread counts**; the runner
//!   checkpoints per-stage counter deltas ([`counters_snapshot`] /
//!   [`delta_since`] / [`apply_delta`]), which makes them bit-identical
//!   across a kill→resume and a clean run too.
//! * **Process counters** ([`incr_process`]) — run-shape bookkeeping
//!   (checkpoint hits/misses, retry attempts, panics contained, abandoned
//!   late completions). Deliberately separate from the work counters:
//!   a resumed run legitimately has different checkpoint traffic than a
//!   clean one, so these sit outside the determinism contract.
//! * **Spans** ([`span`]) — RAII wall-clock scopes on a monotonic clock,
//!   aggregated by hierarchical name (nested spans on one thread join
//!   with `/`). Only recorded when metrics are enabled; durations are the
//!   only nondeterministic fields in the artifact.
//! * **Events** ([`error!`], [`warn!`], [`info!`], [`debug!`]) — the
//!   structured replacement for ad-hoc `eprintln!`: filtered to stderr by
//!   a global [`Level`], and (when metrics are enabled) buffered into the
//!   artifact's event log.
//! * **The artifact** ([`render_json`]) — a JSON document with fixed key
//!   order and sorted entries, written through the runner's atomic writer
//!   by the CLI's `--metrics` flag. [`zero_wall_times`] blanks every
//!   duration field so CI can byte-diff two runs; [`extract_bench`]
//!   derives the `BENCH_stage_times.json` snapshot from it.
//!
//! Disabled mode (`--metrics` absent) is the default: spans skip the
//! clock entirely, events skip the buffer, and nothing is ever written —
//! report bytes are unchanged whether metrics are on or off.

mod event;
mod json;
mod registry;
mod span;

pub use event::{log, set_verbosity, verbosity, Level};
pub use json::{extract_bench, zero_wall_times};
pub use registry::{
    apply_delta, counters_snapshot, delta_since, global, incr, incr_process, process_counter,
    render_json, reset, set_gauge, set_process, set_process_max, CounterSnapshot, ObsDelta,
    Registry, SpanStat,
};
pub use span::{span, Span};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns full metrics recording (spans + event buffering) on or off.
/// Counters and gauges are recorded regardless — they are cheap and the
/// resume determinism contract needs them in every run's checkpoints.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether full metrics recording is on (the CLI's `--metrics` flag).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
