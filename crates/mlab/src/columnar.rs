//! Typed row ↔ column mapping between the corpus schemas and the
//! `ndt-store` shard format.
//!
//! `ndt-store` moves anonymous `[ColumnData]` groups; this module gives
//! those columns their meaning for the two corpus tables:
//!
//! * **unified** — one row per published NDT download
//!   ([`UnifiedDownloadRow`]): `day` delta+varint, addresses and ASN
//!   dictionary-or-raw `u32`, oblast/city as sentinel-tagged `u32`
//!   categoricals, metrics as exact `f64` bit patterns;
//! * **traces** — one row per sidecar traceroute ([`Scamper1Row`]): the
//!   three path fingerprints as `u64` columns (heavily repeated, so they
//!   dictionary-encode), and the variable-length AS path flattened into a
//!   lengths column plus an `aux` values column with an independent
//!   per-group row count.
//!
//! Store-level predicate pushdown is group-granular; the typed readers
//! here apply the **exact** row filters (day range, oblast) after
//! decoding, so callers get precisely the rows they asked for while
//! whole non-matching groups are never read off disk.
//!
//! Two read shapes share one scan ([`scan_unified_batches`]):
//!
//! * **row-wise** ([`scan_unified`], [`scan_traces`]) — materializes
//!   typed row structs; the original, O(rows) shape;
//! * **columnar** ([`UnifiedBatch`] via [`scan_unified_batches`]) — hands
//!   each validated group to a sink as owned column vectors, no per-row
//!   structs and no string materialization; the vectorized report path
//!   ingests these with [`push_unified_batch`] and never holds more than
//!   a bounded window of decoded groups.
//!
//! Writes feed the `store.*` counters directly. Scans *return* their
//! [`ndt_store::ScanStats`] and leave publishing to the caller via
//! [`publish_scan_stats`] — exactly once per successful scan, in a
//! deterministic order — so the materialized and vectorized engines
//! report identical counter values and a failed (quarantined) shard
//! contributes nothing. Byte and row counts are pure functions of the
//! corpus, so they fall under the counter determinism contract;
//! wall-clock timing stays in span land.

use crate::codec::{oblast_from_index, oblast_index};
use crate::schema::{Scamper1Row, UnifiedDownloadRow};
use ndt_geo::{CityId, Oblast};
use ndt_store::wire::CodecError;
use ndt_store::{
    Batch, ColType, ColumnData, ColumnSpec, Predicate, Scan, ScanOptions, Schema, Shard,
    ShardWriter, StoreError, WriteStats, DEFAULT_GROUP_ROWS,
};
use ndt_topology::{Asn, Ipv4Addr};
use std::io::Write;

/// Sentinel in the `oblast` column for rows MaxMind failed to locate.
pub const OBLAST_NONE: u32 = 0xFF;
/// Sentinel in the `city` column for rows without a city label (city ids
/// are `u16`, so the first value outside that range is free).
pub const CITY_NONE: u32 = 0x1_0000;

/// Schema of the `unified` table's shards.
pub fn unified_schema() -> Result<Schema, StoreError> {
    Schema::new(
        "unified",
        vec![
            ColumnSpec::new("day", ColType::I64),
            ColumnSpec::new("client_ip", ColType::U32),
            ColumnSpec::new("server_ip", ColType::U32),
            ColumnSpec::new("client_asn", ColType::U32),
            ColumnSpec::new("oblast", ColType::U32),
            ColumnSpec::new("city", ColType::U32),
            ColumnSpec::new("tput", ColType::F64),
            ColumnSpec::new("min_rtt", ColType::F64),
            ColumnSpec::new("loss", ColType::F64),
        ],
    )
}

/// Schema of the `traces` table's shards. `as_path` is an aux column:
/// its per-group row count is the sum of the group's `as_path_len`
/// values, not the group row count.
pub fn traces_schema() -> Result<Schema, StoreError> {
    Schema::new(
        "traces",
        vec![
            ColumnSpec::new("day", ColType::I64),
            ColumnSpec::new("client_ip", ColType::U32),
            ColumnSpec::new("server_ip", ColType::U32),
            ColumnSpec::new("path_fp", ColType::U64),
            ColumnSpec::new("router_fp", ColType::U64),
            ColumnSpec::new("resolved_fp", ColType::U64),
            ColumnSpec::new("as_path_len", ColType::U32),
            ColumnSpec::aux("as_path", ColType::U32),
            ColumnSpec::new("border_tag", ColType::U32),
            ColumnSpec::new("border_a", ColType::U32),
            ColumnSpec::new("border_b", ColType::U32),
            ColumnSpec::new("tput", ColType::F64),
            ColumnSpec::new("min_rtt", ColType::F64),
            ColumnSpec::new("loss", ColType::F64),
        ],
    )
}

fn record_write_stats(stats: &WriteStats) {
    ndt_obs::incr("store.rows_written", stats.rows);
    ndt_obs::incr("store.groups_written", stats.groups);
    ndt_obs::incr("store.bytes_file", stats.bytes_file);
    ndt_obs::incr("store.bytes_encoded", stats.bytes_encoded);
    ndt_obs::incr("store.bytes_raw", stats.bytes_raw);
}

/// Publishes one scan's counters into `ndt-obs`. Callers invoke this
/// exactly once per *successful* scan (the runner does so per surviving
/// shard pair, in manifest order): both report engines then publish
/// identical values, and a quarantined shard contributes nothing.
pub fn publish_scan_stats(stats: &ndt_store::ScanStats) {
    ndt_obs::incr("store.groups_scanned", stats.groups_scanned);
    ndt_obs::incr("store.groups_skipped", stats.groups_skipped);
    ndt_obs::incr("store.groups_pruned_dict", stats.groups_pruned_dict);
    ndt_obs::incr("store.pages_decoded", stats.pages_decoded);
    ndt_obs::incr("store.pages_skipped", stats.pages_skipped);
    ndt_obs::incr("store.rows_read", stats.rows_emitted);
    ndt_obs::incr("store.rows_pruned", stats.rows_pruned);
    ndt_obs::incr("store.bytes_read", stats.bytes_read);
}

/// Writes unified rows as one shard in [`DEFAULT_GROUP_ROWS`]-row groups.
pub fn write_unified<W: Write>(out: W, rows: &[UnifiedDownloadRow]) -> Result<(W, WriteStats), StoreError> {
    let mut w = ShardWriter::new(out, unified_schema()?)?;
    for chunk in chunks_or_one(rows) {
        let mut day = Vec::with_capacity(chunk.len());
        let mut client_ip = Vec::with_capacity(chunk.len());
        let mut server_ip = Vec::with_capacity(chunk.len());
        let mut client_asn = Vec::with_capacity(chunk.len());
        let mut oblast = Vec::with_capacity(chunk.len());
        let mut city = Vec::with_capacity(chunk.len());
        let mut tput = Vec::with_capacity(chunk.len());
        let mut min_rtt = Vec::with_capacity(chunk.len());
        let mut loss = Vec::with_capacity(chunk.len());
        for r in chunk {
            day.push(r.day);
            client_ip.push(r.client_ip.0);
            server_ip.push(r.server_ip.0);
            client_asn.push(r.client_asn.0);
            oblast.push(r.oblast.map_or(OBLAST_NONE, |o| oblast_index(o) as u32));
            city.push(r.city.map_or(CITY_NONE, |c| c.0 as u32));
            tput.push(r.mean_tput_mbps);
            min_rtt.push(r.min_rtt_ms);
            loss.push(r.loss_rate);
        }
        w.write_group(&[
            ColumnData::I64(day),
            ColumnData::U32(client_ip),
            ColumnData::U32(server_ip),
            ColumnData::U32(client_asn),
            ColumnData::U32(oblast),
            ColumnData::U32(city),
            ColumnData::F64(tput),
            ColumnData::F64(min_rtt),
            ColumnData::F64(loss),
        ])?;
    }
    let (out, stats) = w.finish()?;
    record_write_stats(&stats);
    Ok((out, stats))
}

/// Writes trace rows as one shard in [`DEFAULT_GROUP_ROWS`]-row groups.
pub fn write_traces<W: Write>(out: W, rows: &[Scamper1Row]) -> Result<(W, WriteStats), StoreError> {
    let mut w = ShardWriter::new(out, traces_schema()?)?;
    for chunk in chunks_or_one(rows) {
        let mut day = Vec::with_capacity(chunk.len());
        let mut client_ip = Vec::with_capacity(chunk.len());
        let mut server_ip = Vec::with_capacity(chunk.len());
        let mut path_fp = Vec::with_capacity(chunk.len());
        let mut router_fp = Vec::with_capacity(chunk.len());
        let mut resolved_fp = Vec::with_capacity(chunk.len());
        let mut as_path_len = Vec::with_capacity(chunk.len());
        let mut as_path = Vec::new();
        let mut border_tag = Vec::with_capacity(chunk.len());
        let mut border_a = Vec::with_capacity(chunk.len());
        let mut border_b = Vec::with_capacity(chunk.len());
        let mut tput = Vec::with_capacity(chunk.len());
        let mut min_rtt = Vec::with_capacity(chunk.len());
        let mut loss = Vec::with_capacity(chunk.len());
        for r in chunk {
            day.push(r.day);
            client_ip.push(r.client_ip.0);
            server_ip.push(r.server_ip.0);
            path_fp.push(r.path_fingerprint);
            router_fp.push(r.router_fingerprint);
            resolved_fp.push(r.resolved_fingerprint);
            as_path_len.push(r.as_path.len() as u32);
            as_path.extend(r.as_path.iter().map(|a| a.0));
            match r.border {
                Some((a, b)) => {
                    border_tag.push(1);
                    border_a.push(a.0);
                    border_b.push(b.0);
                }
                None => {
                    border_tag.push(0);
                    border_a.push(0);
                    border_b.push(0);
                }
            }
            tput.push(r.mean_tput_mbps);
            min_rtt.push(r.min_rtt_ms);
            loss.push(r.loss_rate);
        }
        w.write_group(&[
            ColumnData::I64(day),
            ColumnData::U32(client_ip),
            ColumnData::U32(server_ip),
            ColumnData::U64(path_fp),
            ColumnData::U64(router_fp),
            ColumnData::U64(resolved_fp),
            ColumnData::U32(as_path_len),
            ColumnData::U32(as_path),
            ColumnData::U32(border_tag),
            ColumnData::U32(border_a),
            ColumnData::U32(border_b),
            ColumnData::F64(tput),
            ColumnData::F64(min_rtt),
            ColumnData::F64(loss),
        ])?;
    }
    let (out, stats) = w.finish()?;
    record_write_stats(&stats);
    Ok((out, stats))
}

/// Chunks rows into write groups; an empty slice still yields no chunks
/// (the writer then produces a valid zero-group shard).
fn chunks_or_one<T>(rows: &[T]) -> impl Iterator<Item = &[T]> {
    rows.chunks(DEFAULT_GROUP_ROWS)
}

fn invalid(what: &'static str, value: u64) -> StoreError {
    StoreError::Corrupt(CodecError::InvalidValue { what, value })
}

fn col<'a>(batch: &'a Batch, idx: usize, name: &'static str) -> Result<&'a ColumnData, StoreError> {
    batch
        .column(idx)
        .ok_or_else(|| StoreError::Schema(format!("column {name} missing from batch")))
}

fn col_i64<'a>(batch: &'a Batch, idx: usize, name: &'static str) -> Result<&'a [i64], StoreError> {
    match col(batch, idx, name)? {
        ColumnData::I64(v) => Ok(v),
        _ => Err(StoreError::Schema(format!("column {name} is not I64"))),
    }
}

fn col_u32<'a>(batch: &'a Batch, idx: usize, name: &'static str) -> Result<&'a [u32], StoreError> {
    match col(batch, idx, name)? {
        ColumnData::U32(v) => Ok(v),
        _ => Err(StoreError::Schema(format!("column {name} is not U32"))),
    }
}

fn col_u64<'a>(batch: &'a Batch, idx: usize, name: &'static str) -> Result<&'a [u64], StoreError> {
    match col(batch, idx, name)? {
        ColumnData::U64(v) => Ok(v),
        _ => Err(StoreError::Schema(format!("column {name} is not U64"))),
    }
}

fn col_f64<'a>(batch: &'a Batch, idx: usize, name: &'static str) -> Result<&'a [f64], StoreError> {
    match col(batch, idx, name)? {
        ColumnData::F64(v) => Ok(v),
        _ => Err(StoreError::Schema(format!("column {name} is not F64"))),
    }
}

fn decode_oblast(v: u32) -> Result<Option<Oblast>, StoreError> {
    if v == OBLAST_NONE {
        return Ok(None);
    }
    let idx = u8::try_from(v).map_err(|_| invalid("oblast index", v as u64))?;
    oblast_from_index(idx).map(Some).map_err(StoreError::Corrupt)
}

fn decode_city(v: u32, max_city: u32) -> Result<Option<CityId>, StoreError> {
    if v == CITY_NONE {
        return Ok(None);
    }
    if v > max_city {
        return Err(invalid("city id", v as u64));
    }
    Ok(Some(CityId(v as u16)))
}

/// Highest valid [`CityId`] value (the catalogue plus Sevastopol).
fn max_city_id() -> u32 {
    (ndt_geo::city::all_cities().count() as u32).saturating_sub(1)
}

/// Decodes one fully-projected batch of the `unified` schema into rows.
pub fn decode_unified_batch(batch: &Batch) -> Result<Vec<UnifiedDownloadRow>, StoreError> {
    let day = col_i64(batch, 0, "day")?;
    let client_ip = col_u32(batch, 1, "client_ip")?;
    let server_ip = col_u32(batch, 2, "server_ip")?;
    let client_asn = col_u32(batch, 3, "client_asn")?;
    let oblast = col_u32(batch, 4, "oblast")?;
    let city = col_u32(batch, 5, "city")?;
    let tput = col_f64(batch, 6, "tput")?;
    let min_rtt = col_f64(batch, 7, "min_rtt")?;
    let loss = col_f64(batch, 8, "loss")?;
    let n = batch.rows as usize;
    for (name, len) in [
        ("client_ip", client_ip.len()),
        ("server_ip", server_ip.len()),
        ("client_asn", client_asn.len()),
        ("oblast", oblast.len()),
        ("city", city.len()),
        ("tput", tput.len()),
        ("min_rtt", min_rtt.len()),
        ("loss", loss.len()),
        ("day", day.len()),
    ] {
        if len != n {
            return Err(StoreError::Schema(format!(
                "column {name} has {len} rows, batch declares {n}"
            )));
        }
    }
    let max_city = max_city_id();
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        rows.push(UnifiedDownloadRow {
            day: day[i],
            client_ip: Ipv4Addr(client_ip[i]),
            server_ip: Ipv4Addr(server_ip[i]),
            client_asn: Asn(client_asn[i]),
            oblast: decode_oblast(oblast[i])?,
            city: decode_city(city[i], max_city)?,
            mean_tput_mbps: tput[i],
            min_rtt_ms: min_rtt[i],
            loss_rate: loss[i],
        });
    }
    Ok(rows)
}

/// Decodes one fully-projected batch of the `traces` schema into rows.
pub fn decode_traces_batch(batch: &Batch) -> Result<Vec<Scamper1Row>, StoreError> {
    let day = col_i64(batch, 0, "day")?;
    let client_ip = col_u32(batch, 1, "client_ip")?;
    let server_ip = col_u32(batch, 2, "server_ip")?;
    let path_fp = col_u64(batch, 3, "path_fp")?;
    let router_fp = col_u64(batch, 4, "router_fp")?;
    let resolved_fp = col_u64(batch, 5, "resolved_fp")?;
    let as_path_len = col_u32(batch, 6, "as_path_len")?;
    let as_path = col_u32(batch, 7, "as_path")?;
    let border_tag = col_u32(batch, 8, "border_tag")?;
    let border_a = col_u32(batch, 9, "border_a")?;
    let border_b = col_u32(batch, 10, "border_b")?;
    let tput = col_f64(batch, 11, "tput")?;
    let min_rtt = col_f64(batch, 12, "min_rtt")?;
    let loss = col_f64(batch, 13, "loss")?;
    let n = batch.rows as usize;
    for (name, len) in [
        ("day", day.len()),
        ("client_ip", client_ip.len()),
        ("server_ip", server_ip.len()),
        ("path_fp", path_fp.len()),
        ("router_fp", router_fp.len()),
        ("resolved_fp", resolved_fp.len()),
        ("as_path_len", as_path_len.len()),
        ("border_tag", border_tag.len()),
        ("border_a", border_a.len()),
        ("border_b", border_b.len()),
        ("tput", tput.len()),
        ("min_rtt", min_rtt.len()),
        ("loss", loss.len()),
    ] {
        if len != n {
            return Err(StoreError::Schema(format!(
                "column {name} has {len} rows, batch declares {n}"
            )));
        }
    }
    let hops_declared: u64 = as_path_len.iter().map(|&l| l as u64).sum();
    if hops_declared != as_path.len() as u64 {
        return Err(invalid("as_path aux length", as_path.len() as u64));
    }
    let mut rows = Vec::with_capacity(n);
    let mut hop = 0usize;
    for i in 0..n {
        let len = as_path_len[i] as usize;
        let path: Vec<Asn> = as_path[hop..hop + len].iter().map(|&a| Asn(a)).collect();
        hop += len;
        let border = match border_tag[i] {
            0 => None,
            1 => Some((Asn(border_a[i]), Asn(border_b[i]))),
            t => return Err(invalid("border tag", t as u64)),
        };
        rows.push(Scamper1Row {
            day: day[i],
            client_ip: Ipv4Addr(client_ip[i]),
            server_ip: Ipv4Addr(server_ip[i]),
            path_fingerprint: path_fp[i],
            router_fingerprint: router_fp[i],
            resolved_fingerprint: resolved_fp[i],
            as_path: path,
            border,
            mean_tput_mbps: tput[i],
            min_rtt_ms: min_rtt[i],
            loss_rate: loss[i],
        });
    }
    Ok(rows)
}

/// Row filters for the typed readers: group-level pushdown where the
/// store can prove a miss, exact row filtering here after decode.
#[derive(Debug, Clone, Copy, Default)]
pub struct RowFilter {
    /// Half-open day range `[lo, hi)`.
    pub day_range: Option<(i64, i64)>,
    /// Exact oblast match (rows without an oblast never match).
    pub oblast: Option<Oblast>,
}

impl RowFilter {
    fn predicates(&self) -> Vec<Predicate> {
        let mut preds = Vec::new();
        if let Some((lo, hi)) = self.day_range {
            preds.push(Predicate::I64Range { column: "day".into(), lo, hi });
        }
        if let Some(o) = self.oblast {
            preds.push(Predicate::U32Eq { column: "oblast".into(), value: oblast_index(o) as u32 });
        }
        preds
    }

    fn matches(&self, day: i64, oblast: Option<Oblast>) -> bool {
        if let Some((lo, hi)) = self.day_range {
            if day < lo || day >= hi {
                return false;
            }
        }
        if let Some(want) = self.oblast {
            if oblast != Some(want) {
                return false;
            }
        }
        true
    }
}

/// One validated, filtered group of unified rows in columnar form — the
/// vectorized loader's unit of transfer. Column vectors are owned (moved
/// straight out of the page decoder), there are no per-row structs, and
/// the categoricals stay as their store codes: no string materializes
/// until table ingestion interns each *distinct* label once.
///
/// Invariants (enforced by [`scan_unified_batches`] before the batch is
/// handed out): all nine vectors have equal length, every `oblast` value
/// is [`OBLAST_NONE`] or a valid oblast index, every `city` value is
/// [`CITY_NONE`] or a valid city id, and every row matches the scan's
/// [`RowFilter`].
#[derive(Debug, Clone, Default)]
pub struct UnifiedBatch {
    pub day: Vec<i64>,
    pub client_ip: Vec<u32>,
    pub server_ip: Vec<u32>,
    pub client_asn: Vec<u32>,
    /// Validated oblast indices ([`OBLAST_NONE`] = unlocated).
    pub oblast: Vec<u32>,
    /// Validated city ids ([`CITY_NONE`] = unlabeled).
    pub city: Vec<u32>,
    pub tput: Vec<f64>,
    pub min_rtt: Vec<f64>,
    pub loss: Vec<f64>,
}

impl UnifiedBatch {
    /// Rows held.
    pub fn rows(&self) -> usize {
        self.day.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.day.is_empty()
    }

    /// Materializes the batch as row structs (the row-wise readers are
    /// built on this, so both read shapes decode identically by
    /// construction). Values were validated at scan time, so conversion
    /// cannot fail.
    pub fn to_rows(&self) -> Vec<UnifiedDownloadRow> {
        let max_city = max_city_id();
        (0..self.rows())
            .map(|i| UnifiedDownloadRow {
                day: self.day[i],
                client_ip: Ipv4Addr(self.client_ip[i]),
                server_ip: Ipv4Addr(self.server_ip[i]),
                client_asn: Asn(self.client_asn[i]),
                oblast: decode_oblast(self.oblast[i]).expect("oblast validated at scan"),
                city: decode_city(self.city[i], max_city).expect("city validated at scan"),
                mean_tput_mbps: self.tput[i],
                min_rtt_ms: self.min_rtt[i],
                loss_rate: self.loss[i],
            })
            .collect()
    }
}

fn take_i64(batch: &mut Batch, idx: usize, name: &'static str) -> Result<Vec<i64>, StoreError> {
    match batch.columns.get_mut(idx).and_then(Option::take) {
        Some(ColumnData::I64(v)) => Ok(v),
        Some(_) => Err(StoreError::Schema(format!("column {name} is not I64"))),
        None => Err(StoreError::Schema(format!("column {name} missing from batch"))),
    }
}

fn take_u32(batch: &mut Batch, idx: usize, name: &'static str) -> Result<Vec<u32>, StoreError> {
    match batch.columns.get_mut(idx).and_then(Option::take) {
        Some(ColumnData::U32(v)) => Ok(v),
        Some(_) => Err(StoreError::Schema(format!("column {name} is not U32"))),
        None => Err(StoreError::Schema(format!("column {name} missing from batch"))),
    }
}

fn take_f64(batch: &mut Batch, idx: usize, name: &'static str) -> Result<Vec<f64>, StoreError> {
    match batch.columns.get_mut(idx).and_then(Option::take) {
        Some(ColumnData::F64(v)) => Ok(v),
        Some(_) => Err(StoreError::Schema(format!("column {name} is not F64"))),
        None => Err(StoreError::Schema(format!("column {name} missing from batch"))),
    }
}

/// Keeps only the rows at `keep` (ascending indices), in place.
fn compact<T: Copy>(v: &mut Vec<T>, keep: &[u32]) {
    for (dst, &src) in keep.iter().enumerate() {
        v[dst] = v[src as usize];
    }
    v.truncate(keep.len());
}

/// Streams a `unified` shard as validated columnar batches, handing each
/// surviving group to `sink` with exact row filtering already applied.
/// Returns the scan's stats **without publishing them** — the caller
/// decides if and when (see [`publish_scan_stats`]).
///
/// Validation is identical to [`decode_unified_batch`]: every row of a
/// surviving group is checked (oblast index, city id) before filtering,
/// so a corrupt value quarantines the shard no matter which rows a
/// filter would keep.
pub fn scan_unified_batches(
    shard: &Shard,
    filter: RowFilter,
    mut sink: impl FnMut(UnifiedBatch),
) -> Result<ndt_store::ScanStats, StoreError> {
    if shard.schema().table != "unified" {
        return Err(StoreError::Schema(format!(
            "expected a unified shard, found table {:?}",
            shard.schema().table
        )));
    }
    let options = ScanOptions { columns: None, predicates: filter.predicates() };
    let mut scan = Scan::new(shard, options)?;
    let max_city = max_city_id();
    let mut keep: Vec<u32> = Vec::new();
    for batch in scan.by_ref() {
        let mut batch = batch?;
        let n = batch.rows as usize;
        let mut b = UnifiedBatch {
            day: take_i64(&mut batch, 0, "day")?,
            client_ip: take_u32(&mut batch, 1, "client_ip")?,
            server_ip: take_u32(&mut batch, 2, "server_ip")?,
            client_asn: take_u32(&mut batch, 3, "client_asn")?,
            oblast: take_u32(&mut batch, 4, "oblast")?,
            city: take_u32(&mut batch, 5, "city")?,
            tput: take_f64(&mut batch, 6, "tput")?,
            min_rtt: take_f64(&mut batch, 7, "min_rtt")?,
            loss: take_f64(&mut batch, 8, "loss")?,
        };
        for (name, len) in [
            ("day", b.day.len()),
            ("client_ip", b.client_ip.len()),
            ("server_ip", b.server_ip.len()),
            ("client_asn", b.client_asn.len()),
            ("oblast", b.oblast.len()),
            ("city", b.city.len()),
            ("tput", b.tput.len()),
            ("min_rtt", b.min_rtt.len()),
            ("loss", b.loss.len()),
        ] {
            if len != n {
                return Err(StoreError::Schema(format!(
                    "column {name} has {len} rows, batch declares {n}"
                )));
            }
        }
        // Validate every row of the surviving group (exactly what the
        // row decoder does), then filter.
        keep.clear();
        for i in 0..n {
            let oblast = decode_oblast(b.oblast[i])?;
            decode_city(b.city[i], max_city)?;
            if filter.matches(b.day[i], oblast) {
                keep.push(i as u32);
            }
        }
        if keep.len() != n {
            compact(&mut b.day, &keep);
            compact(&mut b.client_ip, &keep);
            compact(&mut b.server_ip, &keep);
            compact(&mut b.client_asn, &keep);
            compact(&mut b.oblast, &keep);
            compact(&mut b.city, &keep);
            compact(&mut b.tput, &keep);
            compact(&mut b.min_rtt, &keep);
            compact(&mut b.loss, &keep);
        }
        sink(b);
    }
    Ok(scan.stats())
}

/// Streams a `unified` shard, returning exactly the rows matching
/// `filter` (in shard order) plus the scan's stats (not yet published —
/// see [`publish_scan_stats`]).
pub fn scan_unified(
    shard: &Shard,
    filter: RowFilter,
) -> Result<(Vec<UnifiedDownloadRow>, ndt_store::ScanStats), StoreError> {
    let mut rows = Vec::new();
    let stats = scan_unified_batches(shard, filter, |b| rows.extend(b.to_rows()))?;
    Ok((rows, stats))
}

/// Streams a `traces` shard, returning exactly the rows whose day falls
/// in `filter.day_range` (traces carry no oblast column; an oblast
/// filter is a schema error) plus the scan's stats (not yet published —
/// see [`publish_scan_stats`]).
pub fn scan_traces(
    shard: &Shard,
    filter: RowFilter,
) -> Result<(Vec<Scamper1Row>, ndt_store::ScanStats), StoreError> {
    if shard.schema().table != "traces" {
        return Err(StoreError::Schema(format!(
            "expected a traces shard, found table {:?}",
            shard.schema().table
        )));
    }
    if filter.oblast.is_some() {
        return Err(StoreError::Schema("traces have no oblast column".to_string()));
    }
    let options = ScanOptions { columns: None, predicates: filter.predicates() };
    let mut scan = Scan::new(shard, options)?;
    let mut rows = Vec::new();
    for batch in scan.by_ref() {
        let batch = batch?;
        for row in decode_traces_batch(&batch)? {
            if filter.matches(row.day, None) {
                rows.push(row);
            }
        }
    }
    Ok((rows, scan.stats()))
}

/// Ingests one columnar batch into a table created by
/// `ndt_mlab::schema::empty_unified_table`, producing exactly the cells
/// `push_unified_row` would, without constructing a single row struct or
/// per-row `String`: integer and float columns append raw values, and
/// the two dictionary columns intern each *distinct* label once per
/// batch, then append codes.
pub fn push_unified_batch(t: &mut ndt_bq::Table, b: &UnifiedBatch) -> Result<(), StoreError> {
    use ndt_bq::{Column, NULL_CODE};

    fn push_ints(col: &mut Column, values: impl Iterator<Item = i64>) -> Result<(), StoreError> {
        match col {
            Column::Int(c) => {
                c.extend(values.map(Some));
                Ok(())
            }
            _ => Err(StoreError::Schema("unified table column is not Int".to_string())),
        }
    }

    fn push_floats(col: &mut Column, values: &[f64]) -> Result<(), StoreError> {
        match col {
            Column::Float(c) => {
                c.extend(values.iter().map(|&v| Some(v)));
                Ok(())
            }
            _ => Err(StoreError::Schema("unified table column is not Float".to_string())),
        }
    }

    push_ints(t.column_mut("day"), b.day.iter().copied())?;
    push_ints(t.column_mut("client_ip"), b.client_ip.iter().map(|&v| v as i64))?;
    push_ints(t.column_mut("server_ip"), b.server_ip.iter().map(|&v| v as i64))?;
    push_ints(t.column_mut("client_asn"), b.client_asn.iter().map(|&v| v as i64))?;

    match t.column_mut("oblast") {
        Column::Dict(d) => {
            // 27 oblasts: a tiny lazily-filled remap keeps interning off
            // the per-row path entirely.
            let mut remap = [NULL_CODE; OBLAST_NONE as usize];
            for &v in &b.oblast {
                if v == OBLAST_NONE {
                    d.push_null();
                    continue;
                }
                let slot = &mut remap[v as usize];
                if *slot == NULL_CODE {
                    let o = decode_oblast(v)?.expect("validated non-sentinel oblast");
                    *slot = d.intern(o.name());
                }
                d.push_code(*slot);
            }
        }
        _ => return Err(StoreError::Schema("oblast column is not dictionary-encoded".to_string())),
    }

    match t.column_mut("city") {
        Column::Dict(d) => {
            let max_city = max_city_id();
            let mut remap = vec![NULL_CODE; max_city as usize + 1];
            for &v in &b.city {
                if v == CITY_NONE {
                    d.push_null();
                    continue;
                }
                let city = decode_city(v, max_city)?.expect("validated non-sentinel city");
                let slot = &mut remap[v as usize];
                if *slot == NULL_CODE {
                    *slot = d.intern(city.get().name);
                }
                d.push_code(*slot);
            }
        }
        _ => return Err(StoreError::Schema("city column is not dictionary-encoded".to_string())),
    }

    push_floats(t.column_mut("tput"), &b.tput)?;
    push_floats(t.column_mut("min_rtt"), &b.min_rtt)?;
    push_floats(t.column_mut("loss"), &b.loss)?;

    t.commit_batch()
        .map_err(|e| StoreError::Schema(format!("unified batch ingest failed: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulator};

    fn sample() -> crate::schema::Dataset {
        static DS: std::sync::OnceLock<crate::schema::Dataset> = std::sync::OnceLock::new();
        DS.get_or_init(|| {
            Simulator::new(SimConfig { scale: 0.02, seed: 77, ..SimConfig::default() }).run()
        })
        .clone()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ndt-mlab-columnar-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn eq_bits_unified(a: &[UnifiedDownloadRow], b: &[UnifiedDownloadRow]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.day == y.day
                    && x.client_ip == y.client_ip
                    && x.server_ip == y.server_ip
                    && x.client_asn == y.client_asn
                    && x.oblast == y.oblast
                    && x.city == y.city
                    && x.mean_tput_mbps.to_bits() == y.mean_tput_mbps.to_bits()
                    && x.min_rtt_ms.to_bits() == y.min_rtt_ms.to_bits()
                    && x.loss_rate.to_bits() == y.loss_rate.to_bits()
            })
    }

    #[test]
    fn unified_rows_roundtrip_through_shard() {
        let mut ds = sample();
        // Exercise the degraded shapes the fault layer produces.
        ds.ndt[0].oblast = None;
        ds.ndt[0].city = None;
        ds.ndt[1].mean_tput_mbps = f64::NAN;
        let path = tmp("unified-rt.ndts");
        let file = std::fs::File::create(&path).expect("create");
        write_unified(std::io::BufWriter::new(file), &ds.ndt).expect("writes");
        let shard = Shard::open(&path).expect("opens");
        let (back, _) = scan_unified(&shard, RowFilter::default()).expect("scans");
        assert!(eq_bits_unified(&ds.ndt, &back), "unified rows did not round-trip");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_ingest_matches_row_ingest() {
        let mut ds = sample();
        ds.ndt[0].oblast = None;
        ds.ndt[0].city = None;
        ds.ndt[1].mean_tput_mbps = f64::NAN;
        let path = tmp("unified-batch-ingest.ndts");
        let file = std::fs::File::create(&path).expect("create");
        write_unified(std::io::BufWriter::new(file), &ds.ndt).expect("writes");
        let shard = Shard::open(&path).expect("opens");

        let mut batched = crate::schema::empty_unified_table();
        scan_unified_batches(&shard, RowFilter::default(), |b| {
            push_unified_batch(&mut batched, &b).expect("ingests");
        })
        .expect("scans");

        let rowwise = ds.unified_table();
        assert_eq!(batched.len(), rowwise.len());
        for col in ["day", "client_ip", "server_ip", "client_asn", "oblast", "city"] {
            for i in 0..batched.len() {
                assert_eq!(
                    batched.value(i, col),
                    rowwise.value(i, col),
                    "cell ({i}, {col}) diverged between batch and row ingest"
                );
            }
        }
        // Float cells compare bitwise (the corpus carries NaN metrics).
        for col in ["tput", "min_rtt", "loss"] {
            for i in 0..batched.len() {
                match (batched.value(i, col), rowwise.value(i, col)) {
                    (ndt_bq::Value::Float(a), ndt_bq::Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "cell ({i}, {col}) diverged")
                    }
                    (a, b) => assert_eq!(a, b, "cell ({i}, {col}) diverged"),
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_rows_roundtrip_through_shard() {
        let mut ds = sample();
        ds.traces[0].border = None;
        ds.traces[1].as_path.clear();
        let path = tmp("traces-rt.ndts");
        let file = std::fs::File::create(&path).expect("create");
        write_traces(std::io::BufWriter::new(file), &ds.traces).expect("writes");
        let shard = Shard::open(&path).expect("opens");
        let (back, _) = scan_traces(&shard, RowFilter::default()).expect("scans");
        assert_eq!(ds.traces.len(), back.len());
        for (x, y) in ds.traces.iter().zip(&back) {
            assert_eq!(x.as_path, y.as_path);
            assert_eq!(x.border, y.border);
            assert_eq!(x.path_fingerprint, y.path_fingerprint);
            assert_eq!(x.mean_tput_mbps.to_bits(), y.mean_tput_mbps.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filters_match_in_memory_filtering_and_prune_groups() {
        let ds = sample();
        let path = tmp("unified-filter.ndts");
        let file = std::fs::File::create(&path).expect("create");
        write_unified(std::io::BufWriter::new(file), &ds.ndt).expect("writes");
        let shard = Shard::open(&path).expect("opens");

        // The 2022 window starts at day 365; day-range pushdown should
        // skip the 2021 groups entirely.
        let filter = RowFilter { day_range: Some((365, 473)), oblast: None };
        let (got, _) = scan_unified(&shard, filter).expect("scans");
        let want: Vec<_> =
            ds.ndt.iter().filter(|r| (365..473).contains(&r.day)).cloned().collect();
        assert!(eq_bits_unified(&want, &got), "day filter diverged from in-memory");

        let filter =
            RowFilter { day_range: None, oblast: Some(ndt_geo::Oblast::KyivCity) };
        let (got, _) = scan_unified(&shard, filter).expect("scans");
        let want: Vec<_> = ds
            .ndt
            .iter()
            .filter(|r| r.oblast == Some(ndt_geo::Oblast::KyivCity))
            .cloned()
            .collect();
        assert!(eq_bits_unified(&want, &got), "oblast filter diverged from in-memory");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corpus_shards_compress_below_half_of_raw() {
        let ds = sample();
        let (_, us) = write_unified(Vec::new(), &ds.ndt).expect("unified writes");
        let (_, ts) = write_traces(Vec::new(), &ds.traces).expect("traces writes");
        let mut total = us;
        total.merge(&ts);
        assert!(total.bytes_raw > 0, "sample corpus is empty");
        let ratio = total.bytes_file as f64 / total.bytes_raw as f64;
        assert!(
            ratio <= 0.5,
            "encoded corpus is {:.1}% of raw-LE, want <= 50% ({} / {} bytes)",
            ratio * 100.0,
            total.bytes_file,
            total.bytes_raw
        );
    }
}
