//! Synthetic load generator for the serve front.
//!
//! `ukraine-ndt loadgen` drives the TCP front with many concurrent
//! clients, each issuing a deterministic round-robin mix of stage
//! requests — repeats of the same stage exercise the cache-hit path,
//! distinct stages the miss path, and (when the server is started with
//! its stall/panic test hooks) tight-deadline and panicking requests.
//! The stage *schedule* is deterministic (client index and request index
//! pick the stage); the measured latencies of course are not.
//!
//! The output is a [`LoadReport`]: outcome counts by rejection type,
//! client-side p50/p99 latency over successful requests, throughput and
//! shed rate — rendered as a small JSON object for `BENCH_serve_latency`
//! extraction and CI assertions.

use std::time::{Duration, Instant};

use crate::net::{fetch, Reply, Request};
use crate::server::ServeError;

/// What one request came back as, with its client-observed latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Response delivered; latency in nanoseconds.
    Ok(u64),
    /// Typed shed (queue full).
    Shed,
    /// Typed drain rejection.
    Draining,
    /// Deadline rejection.
    Deadline,
    /// Contained stage panic.
    Panicked,
    /// Stage-level failure.
    Failed,
    /// Unknown-stage rejection.
    Unknown,
    /// Transport error (connect/read/write failed).
    IoError,
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued by each client.
    pub requests_per_client: usize,
    /// Stage mix, consumed round-robin (offset per client so clients
    /// start on different stages).
    pub stages: Vec<String>,
    /// Per-request deadline sent on the wire; `None` uses the server
    /// default.
    pub deadline_ms: Option<u64>,
    /// Client socket timeout (transport bound, not the request deadline).
    pub socket_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            clients: 8,
            requests_per_client: 16,
            stages: vec!["fig2".to_string()],
            deadline_ms: None,
            socket_timeout: Duration::from_secs(30),
        }
    }
}

/// Aggregated result of one load run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Requests issued in total.
    pub total: u64,
    /// Responses delivered.
    pub ok: u64,
    /// Queue-full sheds.
    pub shed: u64,
    /// Drain rejections.
    pub draining: u64,
    /// Deadline rejections.
    pub deadline: u64,
    /// Contained panics.
    pub panicked: u64,
    /// Stage failures.
    pub failed: u64,
    /// Unknown-stage rejections.
    pub unknown: u64,
    /// Transport errors.
    pub io_errors: u64,
    /// Client-side p50 latency over successful requests, milliseconds.
    pub p50_ms: f64,
    /// Client-side p99 latency over successful requests, milliseconds.
    pub p99_ms: f64,
    /// Successful responses per wall-clock second.
    pub throughput_rps: f64,
    /// `shed / total`.
    pub shed_rate: f64,
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: u64,
}

/// Nearest-rank percentile over a sorted sample set.
fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl LoadReport {
    /// Folds raw per-request outcomes into a report.
    pub fn from_outcomes(outcomes: &[Outcome], wall: Duration) -> LoadReport {
        let mut r = LoadReport { total: outcomes.len() as u64, ..LoadReport::default() };
        let mut latencies: Vec<u64> = Vec::new();
        for o in outcomes {
            match o {
                Outcome::Ok(nanos) => {
                    r.ok += 1;
                    latencies.push(*nanos);
                }
                Outcome::Shed => r.shed += 1,
                Outcome::Draining => r.draining += 1,
                Outcome::Deadline => r.deadline += 1,
                Outcome::Panicked => r.panicked += 1,
                Outcome::Failed => r.failed += 1,
                Outcome::Unknown => r.unknown += 1,
                Outcome::IoError => r.io_errors += 1,
            }
        }
        latencies.sort_unstable();
        r.p50_ms = percentile_sorted(&latencies, 0.50) as f64 / 1e6;
        r.p99_ms = percentile_sorted(&latencies, 0.99) as f64 / 1e6;
        r.wall_ms = wall.as_millis() as u64;
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            r.throughput_rps = r.ok as f64 / secs;
        }
        if r.total > 0 {
            r.shed_rate = r.shed as f64 / r.total as f64;
        }
        r
    }

    /// Renders the report as a single JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"total\": {},\n",
                "  \"ok\": {},\n",
                "  \"shed\": {},\n",
                "  \"draining\": {},\n",
                "  \"deadline\": {},\n",
                "  \"panicked\": {},\n",
                "  \"failed\": {},\n",
                "  \"unknown\": {},\n",
                "  \"io_errors\": {},\n",
                "  \"p50_ms\": {:.3},\n",
                "  \"p99_ms\": {:.3},\n",
                "  \"throughput_rps\": {:.1},\n",
                "  \"shed_rate\": {:.4},\n",
                "  \"wall_ms\": {}\n",
                "}}"
            ),
            self.total,
            self.ok,
            self.shed,
            self.draining,
            self.deadline,
            self.panicked,
            self.failed,
            self.unknown,
            self.io_errors,
            self.p50_ms,
            self.p99_ms,
            self.throughput_rps,
            self.shed_rate,
            self.wall_ms,
        )
    }
}

fn classify(reply: Reply, latency: Duration) -> Outcome {
    match reply {
        Reply::Ok(_) => Outcome::Ok(latency.as_nanos() as u64),
        Reply::Err(ServeError::Overloaded { .. }) => Outcome::Shed,
        Reply::Err(ServeError::Draining) => Outcome::Draining,
        Reply::Err(ServeError::DeadlineExceeded) => Outcome::Deadline,
        Reply::Err(ServeError::Panicked(_)) => Outcome::Panicked,
        Reply::Err(ServeError::Failed(_)) => Outcome::Failed,
        Reply::Err(ServeError::UnknownStage(_)) => Outcome::Unknown,
    }
}

/// Runs the load: `clients` threads, each issuing
/// `requests_per_client` requests round-robin over `stages`, and folds
/// every outcome into one [`LoadReport`].
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let workers: Vec<_> = (0..cfg.clients.max(1))
        .map(|c| {
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name(format!("loadgen-{c}"))
                .spawn(move || {
                    let mut outcomes = Vec::with_capacity(cfg.requests_per_client);
                    for i in 0..cfg.requests_per_client {
                        let stage =
                            &cfg.stages[(c * cfg.requests_per_client + i) % cfg.stages.len()];
                        let req = Request {
                            stage: stage.clone(),
                            deadline_ms: cfg.deadline_ms,
                        };
                        let t0 = Instant::now();
                        let outcome = match fetch(&cfg.addr, &req, cfg.socket_timeout) {
                            Ok(reply) => classify(reply, t0.elapsed()),
                            Err(_) => Outcome::IoError,
                        };
                        outcomes.push(outcome);
                    }
                    outcomes
                })
                .expect("spawn loadgen client")
        })
        .collect();
    let mut all = Vec::new();
    for w in workers {
        // A panicking client thread would be a loadgen bug; surface it.
        all.extend(w.join().expect("loadgen client panicked"));
    }
    LoadReport::from_outcomes(&all, started.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_outcomes() {
        let outcomes = [
            Outcome::Ok(1_000_000),  // 1ms
            Outcome::Ok(2_000_000),  // 2ms
            Outcome::Ok(10_000_000), // 10ms
            Outcome::Shed,
            Outcome::Panicked,
            Outcome::Deadline,
        ];
        let r = LoadReport::from_outcomes(&outcomes, Duration::from_secs(2));
        assert_eq!(r.total, 6);
        assert_eq!(r.ok, 3);
        assert_eq!(r.shed, 1);
        assert_eq!(r.panicked, 1);
        assert_eq!(r.deadline, 1);
        assert!((r.p50_ms - 2.0).abs() < 1e-9, "{}", r.p50_ms);
        assert!((r.p99_ms - 10.0).abs() < 1e-9, "{}", r.p99_ms);
        assert!((r.throughput_rps - 1.5).abs() < 1e-9, "{}", r.throughput_rps);
        assert!((r.shed_rate - 1.0 / 6.0).abs() < 1e-9, "{}", r.shed_rate);
        assert_eq!(r.wall_ms, 2000);
    }

    #[test]
    fn empty_run_reports_zeroes_without_dividing() {
        let r = LoadReport::from_outcomes(&[], Duration::ZERO);
        assert_eq!(r, LoadReport::default());
    }

    #[test]
    fn json_has_the_expected_keys() {
        let r = LoadReport::from_outcomes(&[Outcome::Ok(5_000_000)], Duration::from_millis(100));
        let json = r.to_json();
        for key in [
            "\"total\"", "\"ok\"", "\"shed\"", "\"p50_ms\"", "\"p99_ms\"",
            "\"throughput_rps\"", "\"shed_rate\"", "\"wall_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&sorted, 0.50), 50);
        assert_eq!(percentile_sorted(&sorted, 0.99), 99);
        assert_eq!(percentile_sorted(&[7], 0.99), 7);
        assert_eq!(percentile_sorted(&[], 0.5), 0);
    }
}
