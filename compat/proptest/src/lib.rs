//! Offline mini-proptest.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: numeric range strategies, tuples, `prop::collection::vec`,
//! `prop::option::of`, `Just`, `.prop_map`, the `proptest!` macro (with
//! optional `#![proptest_config(..)]`) and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs via the assertion
//!   message instead of a minimized counterexample.
//! * **Deterministic** — cases are derived from a fixed per-test seed (FNV
//!   of the test name), so runs are reproducible without a regression file;
//!   `*.proptest-regressions` files are ignored.

use std::ops::{Range, RangeInclusive};

/// Deterministic case generator (xoshiro-free: SplitMix64 is plenty here).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test name, stable across runs and platforms.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Per-test configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property case; `prop_assert!` returns this.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure with its message.
    Fail(String),
}

/// Body result type of a property closure.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// `Vec` strategy with a uniformly drawn length in `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Vector of values from `elem` with length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `None` a quarter of the time.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some(value)` ~75% of the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.new_value(rng))
                }
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    { $body }
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err($crate::TestCaseError::Fail(msg)) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body (fails the case, not the
/// process, exactly like upstream).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Skips the case when an assumption does not hold. Upstream retries the
/// case; the stub simply treats it as passing, which keeps determinism.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let x = crate::Strategy::new_value(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&x));
            let f = crate::Strategy::new_value(&(-1.5..2.5f64), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_and_option_compose() {
        let mut rng = crate::TestRng::deterministic("compose");
        let strat = prop::collection::vec((0i64..5, prop::option::of(0.0..1.0f64)), 2..9);
        for _ in 0..200 {
            let v = crate::Strategy::new_value(&strat, &mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline itself works end to end.
        #[test]
        fn macro_roundtrip(a in 0i64..10, v in prop::collection::vec(0.0..1.0f64, 1..4)) {
            prop_assert!(a >= 0, "a = {a}");
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(!v.is_empty());
        }
    }
}
