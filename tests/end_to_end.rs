//! End-to-end integration: simulate the full study window at reduced scale
//! and assert the paper's qualitative findings hold across the whole
//! pipeline (topology → conflict → platform → analysis).

use std::sync::OnceLock;
use ukraine_ndt::analysis::{
    fig2_national, fig3_oblast, fig5_border, fig6_as199995, fig9_path_perf, table1_cities,
    table2_paths, table3_as,
};
use ukraine_ndt::prelude::*;
use ukraine_ndt::topology::asn::well_known as wk;

fn data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| {
        StudyData::generate(SimConfig { scale: 0.2, seed: 20_220_224, ..SimConfig::default() })
    })
}

#[test]
fn finding_1_performance_degrades_after_the_invasion() {
    // §4.1: higher loss, higher RTT, lower throughput after February 24,
    // none of which appears in the 2021 baseline.
    let fig2 = fig2_national::compute(data()).expect("clean corpus computes");
    let invasion = Date::new(2022, 2, 24).day_index();
    let pre = |f: fn(&fig2_national::DayPoint) -> f64| fig2.mean_2022(invasion - 54, invasion, f);
    let war = |f: fn(&fig2_national::DayPoint) -> f64| fig2.mean_2022(invasion, invasion + 54, f);
    assert!(war(|p| p.mean_loss) > 1.6 * pre(|p| p.mean_loss));
    assert!(war(|p| p.mean_min_rtt_ms) > 1.4 * pre(|p| p.mean_min_rtt_ms));
    assert!(war(|p| p.mean_tput_mbps) < 0.9 * pre(|p| p.mean_tput_mbps));
    // Baseline 2021: the same split shows no comparable jump.
    let b = &fig2.y2021.days;
    let mean = |lo: i64, hi: i64| {
        let v: Vec<f64> =
            b.iter().filter(|p| (lo..hi).contains(&p.day)).map(|p| p.mean_loss).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let drift = mean(54, 108) / mean(0, 54);
    assert!(drift < 1.25, "2021 baseline loss drifts by {drift}");
}

#[test]
fn finding_2_degradation_correlates_with_military_activity() {
    // §4.2/§4.3: the assaulted fronts degrade hardest; the paper's loss
    // champions (Zaporizhzhya, Kherson, Sumy) show multi-x loss increases
    // while the far west stays mild.
    let fig3 = fig3_oblast::compute(data()).expect("clean corpus computes");
    let loss_of = |o: Oblast| fig3.rows.iter().find(|r| r.oblast == o).map(|r| r.d_loss).unwrap();
    for hot in [Oblast::Zaporizhzhya, Oblast::Kherson, Oblast::Sumy] {
        assert!(loss_of(hot) > 1.5, "{hot}: loss change {}", loss_of(hot));
    }
    for calm in [Oblast::Chernivtsi, Oblast::Transcarpathia] {
        assert!(loss_of(calm) < 1.5, "{calm}: loss change {}", loss_of(calm));
    }
}

#[test]
fn finding_3_test_counts_stay_roughly_stable_nationally() {
    // §3 Limitations: "test counts are relatively stable, and we see at
    // most a 2% decrease … indicating that this form of bias is limited."
    // (The paper's Table 1 actually shows a 6.6% *increase*.)
    let t1 = table1_cities::compute(data()).expect("clean corpus computes");
    let n = t1.row("National").unwrap();
    let drift = n.tests_wartime as f64 / n.tests_prewar as f64;
    assert!((0.9..1.2).contains(&drift), "national count drift = {drift}");
}

#[test]
fn finding_4_path_diversity_rises_only_in_wartime() {
    // §5.1/Table 2: "the level of path diversity greatly increased after
    // the start of the war, while during our baseline period in 2021,
    // there was no corresponding change."
    let t2 = table2_paths::compute(data(), 1000).expect("clean corpus computes");
    let b1 = t2.row(Period::BaselineJanFeb2021).paths_per_conn;
    let b2 = t2.row(Period::BaselineFebApr2021).paths_per_conn;
    let pw = t2.row(Period::Prewar2022).paths_per_conn;
    let wt = t2.row(Period::Wartime2022).paths_per_conn;
    assert!((b1 - b2).abs() < 0.25 * b1, "baselines diverge: {b1} vs {b2}");
    assert!(wt > pw + 0.4, "no wartime diversity jump: {pw} → {wt}");
    assert!(wt > b1 && wt > b2);
}

#[test]
fn finding_5_as_damage_is_heterogeneous() {
    // §5.2/Table 3: some ASes are crushed, others — serving the same city —
    // ride it out near baseline.
    let t3 = table3_as::compute(data(), 10).expect("clean corpus computes");
    let kyivstar = t3.row(wk::KYIVSTAR).expect("Kyivstar in top-10");
    let skif = t3.row(wk::SKIF).expect("SKIF in top-10");
    // Both serve Kyiv; only one degrades.
    assert!(kyivstar.d_tput < -0.2 && kyivstar.tput_test.significant());
    assert!(skif.d_tput > -0.05);
    assert!(kyivstar.loss_ratio > 1.3 && skif.loss_ratio < 1.2);
    // The top-10 carry only a minority of tests.
    assert!(t3.top10_share < 0.75, "top-10 share = {}", t3.top10_share);
}

#[test]
fn finding_6_ingress_shifts_toward_hurricane_electric() {
    // §5.2/Figures 5–6.
    let fig5 = fig5_border::compute(data()).expect("clean corpus computes");
    assert!(fig5.row_change(wk::HURRICANE_ELECTRIC) > 0);
    assert!(fig5.row_change(wk::COGENT) < 0);
    let fig6 = fig6_as199995::compute(data()).expect("clean corpus computes");
    let invasion = Date::new(2022, 2, 24).day_index();
    let he_pre = fig6.mean_share(wk::HURRICANE_ELECTRIC, invasion - 54, invasion);
    let he_late = fig6.mean_share(wk::HURRICANE_ELECTRIC, invasion + 21, invasion + 54);
    assert!(he_late > he_pre + 0.15, "HE ingress share: {he_pre} → {he_late}");
}

#[test]
fn finding_7_path_churn_correlates_mildly_with_degradation() {
    // Appendix D / Figure 9: negative for throughput, positive for loss,
    // mild in magnitude ("only a mild correlation of route updates with
    // performance degradation").
    let fig9 = fig9_path_perf::compute(data(), 10).expect("clean corpus computes");
    assert!(fig9.corr_tput < -0.02, "corr tput = {}", fig9.corr_tput);
    assert!(fig9.corr_loss > 0.05, "corr loss = {}", fig9.corr_loss);
    assert!(fig9.corr_tput > -0.6 && fig9.corr_loss < 0.6, "correlation should stay mild");
}

#[test]
fn dataset_is_deterministic_end_to_end() {
    let cfg = SimConfig { scale: 0.03, seed: 5, ..SimConfig::default() };
    let a = StudyData::generate(cfg);
    let b = StudyData::generate(cfg);
    assert_eq!(a.raw.ndt.len(), b.raw.ndt.len());
    assert_eq!(a.raw.traces.len(), b.raw.traces.len());
    assert_eq!(a.raw.ndt[..200.min(a.raw.ndt.len())], b.raw.ndt[..200.min(b.raw.ndt.len())]);
}
