//! The metrics registry: counters, gauges, process counters, span stats.
//!
//! A [`Registry`] is a mutex-guarded set of sorted maps. The process-wide
//! instance behind [`global`] is what the free functions ([`incr`],
//! [`set_gauge`], …) and the CLI's `--metrics` artifact use; tests can
//! construct private registries to assert on exact contents without
//! cross-test interference.
//!
//! Lock poisoning is deliberately forgiven everywhere: the runner executes
//! stage bodies under `catch_unwind`, so a panicking stage may die while
//! holding the registry lock, and observability must never turn a contained
//! panic into a poisoned-lock abort.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::event::Level;

/// Aggregated timing for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Number of completed scopes.
    pub count: u64,
    /// Total wall time, nanoseconds (monotonic clock).
    pub total_nanos: u64,
}

/// Cap on buffered events; beyond it only `events_dropped` grows.
const MAX_EVENTS: usize = 1024;

/// Cap on retained per-span duration samples. Spans that fire more often
/// (e.g. `serve.request` under load) keep the first `MAX_SPAN_SAMPLES`
/// durations for percentile estimation; `count`/`total_nanos` keep
/// aggregating past the cap, so totals stay exact while percentiles
/// become a prefix estimate.
const MAX_SPAN_SAMPLES: usize = 4096;

/// One span name's aggregate plus the retained duration samples behind
/// its percentile estimates.
#[derive(Debug, Default)]
struct SpanAgg {
    stat: SpanStat,
    /// Nanosecond durations, insertion order, capped at
    /// `MAX_SPAN_SAMPLES`.
    samples: Vec<u64>,
}

/// Nearest-rank percentile (`q` in `[0, 1]`) over a *sorted* slice.
fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    process: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanAgg>,
    events: Vec<(Level, String)>,
    events_dropped: u64,
}

/// A set of named counters, gauges, process counters and span timings.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// A point-in-time copy of the deterministic sections (counters + gauges),
/// used to compute per-stage [`ObsDelta`]s for checkpointing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
}

/// What one pipeline stage added to the deterministic sections: counter
/// *increments* and gauge *final values*. The runner persists this beside
/// each stage checkpoint and re-applies it on resume, so a resumed run's
/// counters match a clean run's bit for bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsDelta {
    /// Counter increments attributable to the stage.
    pub counters: BTreeMap<String, u64>,
    /// Gauges the stage set, at their end-of-stage values.
    pub gauges: BTreeMap<String, u64>,
}

impl ObsDelta {
    /// True when the delta carries nothing.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Adds `n` to the named work counter.
    pub fn incr(&self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        let mut g = self.lock();
        match g.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(n),
            None => {
                g.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Adds `n` to the named process (run-shape) counter.
    pub fn incr_process(&self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        let mut g = self.lock();
        match g.process.get_mut(name) {
            Some(c) => *c = c.saturating_add(n),
            None => {
                g.process.insert(name.to_string(), n);
            }
        }
    }

    /// Sets the named gauge to `value` (idempotent by design — repeated
    /// sets of the same model size are harmless).
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Sets a point-in-time value in the `process` section (a process
    /// gauge). The `gauges` section carries simulated-world facts under
    /// the determinism contract; run-shape observations that are gauges
    /// rather than monotonic counts — peak queue depth, high-water marks —
    /// belong here instead.
    pub fn set_process(&self, name: &str, value: u64) {
        self.lock().process.insert(name.to_string(), value);
    }

    /// Raises a process gauge to `value` if it exceeds the current value
    /// (a high-water mark). Concurrent writers may race to observe their
    /// own instantaneous values, but the retained maximum is exact because
    /// the compare-and-set happens under the registry lock.
    pub fn set_process_max(&self, name: &str, value: u64) {
        let mut g = self.lock();
        match g.process.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                g.process.insert(name.to_string(), value);
            }
        }
    }

    /// Records one completed span scope.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        let mut g = self.lock();
        let agg = g.spans.entry(path.to_string()).or_default();
        let nanos = elapsed.as_nanos() as u64;
        agg.stat.count += 1;
        agg.stat.total_nanos = agg.stat.total_nanos.saturating_add(nanos);
        if agg.samples.len() < MAX_SPAN_SAMPLES {
            agg.samples.push(nanos);
        }
    }

    /// Buffers one event line for the artifact's event log.
    pub fn record_event(&self, level: Level, message: String) {
        let mut g = self.lock();
        if g.events.len() >= MAX_EVENTS {
            g.events_dropped += 1;
        } else {
            g.events.push((level, message));
        }
    }

    /// Copies the deterministic sections for later [`Registry::delta_since`].
    pub fn counters_snapshot(&self) -> CounterSnapshot {
        let g = self.lock();
        CounterSnapshot { counters: g.counters.clone(), gauges: g.gauges.clone() }
    }

    /// Counter increments and gauge values recorded since `snap`.
    pub fn delta_since(&self, snap: &CounterSnapshot) -> ObsDelta {
        let g = self.lock();
        let mut delta = ObsDelta::default();
        for (name, &now) in &g.counters {
            let before = snap.counters.get(name).copied().unwrap_or(0);
            if now > before {
                delta.counters.insert(name.clone(), now - before);
            }
        }
        for (name, &now) in &g.gauges {
            if snap.gauges.get(name) != Some(&now) {
                delta.gauges.insert(name.clone(), now);
            }
        }
        delta
    }

    /// Re-applies a checkpointed stage delta (counters add, gauges set).
    pub fn apply_delta(&self, delta: &ObsDelta) {
        let mut g = self.lock();
        for (name, &n) in &delta.counters {
            match g.counters.get_mut(name) {
                Some(c) => *c = c.saturating_add(n),
                None => {
                    g.counters.insert(name.clone(), n);
                }
            }
        }
        for (name, &v) in &delta.gauges {
            g.gauges.insert(name.clone(), v);
        }
    }

    /// Current value of a work counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a process counter (0 when never incremented).
    pub fn process_counter(&self, name: &str) -> u64 {
        self.lock().process.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.lock().gauges.get(name).copied()
    }

    /// Aggregated stats for a span name, if any scope completed.
    pub fn span_stat(&self, path: &str) -> Option<SpanStat> {
        self.lock().spans.get(path).map(|a| a.stat)
    }

    /// `(p50, p99)` duration in nanoseconds for a span name, nearest-rank
    /// over the retained samples (the first `MAX_SPAN_SAMPLES` scopes).
    pub fn span_percentiles(&self, path: &str) -> Option<(u64, u64)> {
        let g = self.lock();
        let agg = g.spans.get(path)?;
        let mut sorted = agg.samples.clone();
        sorted.sort_unstable();
        Some((percentile_sorted(&sorted, 0.50), percentile_sorted(&sorted, 0.99)))
    }

    /// Clears every section (test support).
    pub fn reset(&self) {
        let mut g = self.lock();
        *g = Inner::default();
    }

    /// Renders the artifact JSON; see the `json` module for the format.
    pub fn render_json(&self) -> String {
        let g = self.lock();
        let spans: BTreeMap<String, crate::json::SpanLine> = g
            .spans
            .iter()
            .map(|(name, agg)| {
                let mut sorted = agg.samples.clone();
                sorted.sort_unstable();
                let line = crate::json::SpanLine {
                    count: agg.stat.count,
                    total_nanos: agg.stat.total_nanos,
                    p50_nanos: percentile_sorted(&sorted, 0.50),
                    p99_nanos: percentile_sorted(&sorted, 0.99),
                };
                (name.clone(), line)
            })
            .collect();
        crate::json::render(
            &g.counters,
            &g.gauges,
            &g.process,
            &spans,
            &g.events,
            g.events_dropped,
        )
    }
}

/// The process-wide registry behind the free functions and `--metrics`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Adds `n` to a named work counter on the global registry.
pub fn incr(name: &str, n: u64) {
    global().incr(name, n);
}

/// Adds `n` to a named process counter on the global registry.
pub fn incr_process(name: &str, n: u64) {
    global().incr_process(name, n);
}

/// Sets a named gauge on the global registry.
pub fn set_gauge(name: &str, value: u64) {
    global().set_gauge(name, value);
}

/// Sets a point-in-time value in the global registry's `process` section
/// (a process gauge — outside the determinism contract).
pub fn set_process(name: &str, value: u64) {
    global().set_process(name, value);
}

/// Raises a named process gauge on the global registry to `value` if it
/// exceeds the current value (high-water mark tracking).
pub fn set_process_max(name: &str, value: u64) {
    global().set_process_max(name, value);
}

/// Current value of a named process counter/gauge on the global registry.
pub fn process_counter(name: &str) -> u64 {
    global().process_counter(name)
}

/// Snapshot of the global registry's deterministic sections.
pub fn counters_snapshot() -> CounterSnapshot {
    global().counters_snapshot()
}

/// Delta of the global registry since `snap`.
pub fn delta_since(snap: &CounterSnapshot) -> ObsDelta {
    global().delta_since(snap)
}

/// Re-applies a checkpointed delta to the global registry.
pub fn apply_delta(delta: &ObsDelta) {
    global().apply_delta(delta);
}

/// Renders the global registry's artifact JSON.
pub fn render_json() -> String {
    global().render_json()
}

/// Clears the global registry (test support).
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_zero_is_a_noop() {
        let r = Registry::new();
        r.incr("a.b", 2);
        r.incr("a.b", 3);
        r.incr("a.c", 0);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("a.c"), 0);
        assert_eq!(r.counter("never"), 0);
    }

    #[test]
    fn process_counters_are_a_separate_namespace() {
        let r = Registry::new();
        r.incr("x", 1);
        r.incr_process("x", 7);
        assert_eq!(r.counter("x"), 1);
        assert_eq!(r.process_counter("x"), 7);
    }

    #[test]
    fn delta_roundtrip_reproduces_a_clean_registry() {
        // Simulate a stage running (clean) vs. its delta being re-applied
        // on resume: final counters must match exactly.
        let clean = Registry::new();
        clean.incr("pre", 10);
        let snap = clean.counters_snapshot();
        clean.incr("pre", 5);
        clean.incr("stage.work", 42);
        clean.set_gauge("model.size", 99);
        let delta = clean.delta_since(&snap);
        assert_eq!(delta.counters.get("pre"), Some(&5));
        assert_eq!(delta.counters.get("stage.work"), Some(&42));
        assert_eq!(delta.gauges.get("model.size"), Some(&99));

        let resumed = Registry::new();
        resumed.incr("pre", 10);
        resumed.apply_delta(&delta);
        assert_eq!(resumed.counter("pre"), 15);
        assert_eq!(resumed.counter("stage.work"), 42);
        assert_eq!(resumed.gauge("model.size"), Some(99));
    }

    #[test]
    fn unchanged_gauges_stay_out_of_the_delta() {
        let r = Registry::new();
        r.set_gauge("g", 5);
        let snap = r.counters_snapshot();
        r.set_gauge("g", 5); // same value: not a change
        r.set_gauge("h", 6);
        let delta = r.delta_since(&snap);
        assert!(!delta.counters.contains_key("g"));
        assert_eq!(delta.gauges.get("g"), None);
        assert_eq!(delta.gauges.get("h"), Some(&6));
    }

    #[test]
    fn spans_aggregate_by_path() {
        let r = Registry::new();
        r.record_span("a/b", Duration::from_millis(2));
        r.record_span("a/b", Duration::from_millis(3));
        let stat = r.span_stat("a/b").expect("recorded");
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_nanos, 5_000_000);
    }

    #[test]
    fn span_percentiles_are_nearest_rank() {
        let r = Registry::new();
        for ms in 1..=100u64 {
            r.record_span("serve.request", Duration::from_millis(ms));
        }
        let (p50, p99) = r.span_percentiles("serve.request").expect("recorded");
        assert_eq!(p50, Duration::from_millis(50).as_nanos() as u64);
        assert_eq!(p99, Duration::from_millis(99).as_nanos() as u64);
        assert_eq!(r.span_percentiles("never"), None);
        // A single sample is its own p50 and p99.
        r.record_span("one", Duration::from_millis(7));
        assert_eq!(
            r.span_percentiles("one"),
            Some((7_000_000, 7_000_000))
        );
    }

    #[test]
    fn span_sample_retention_is_bounded_but_totals_stay_exact() {
        let r = Registry::new();
        for _ in 0..(MAX_SPAN_SAMPLES + 500) {
            r.record_span("hot", Duration::from_nanos(10));
        }
        let stat = r.span_stat("hot").expect("recorded");
        assert_eq!(stat.count, (MAX_SPAN_SAMPLES + 500) as u64);
        assert_eq!(stat.total_nanos, 10 * (MAX_SPAN_SAMPLES + 500) as u64);
        assert_eq!(r.lock().spans.get("hot").expect("agg").samples.len(), MAX_SPAN_SAMPLES);
    }

    #[test]
    fn process_gauges_set_rather_than_accumulate() {
        let r = Registry::new();
        r.set_process("serve.queue_depth_peak", 5);
        r.set_process("serve.queue_depth_peak", 3);
        assert_eq!(r.process_counter("serve.queue_depth_peak"), 3);
    }

    #[test]
    fn process_max_gauges_only_ratchet_upward() {
        let r = Registry::new();
        r.set_process_max("store.peak_resident_rows", 5);
        r.set_process_max("store.peak_resident_rows", 3);
        assert_eq!(r.process_counter("store.peak_resident_rows"), 5);
        r.set_process_max("store.peak_resident_rows", 9);
        assert_eq!(r.process_counter("store.peak_resident_rows"), 9);
    }

    #[test]
    fn event_buffer_is_bounded() {
        let r = Registry::new();
        for i in 0..(MAX_EVENTS + 10) {
            r.record_event(Level::Info, format!("event {i}"));
        }
        let g = r.lock();
        assert_eq!(g.events.len(), MAX_EVENTS);
        assert_eq!(g.events_dropped, 10);
    }
}
