//! Welch's unequal-variances t-test.
//!
//! The paper justifies Welch's test explicitly (Appendix B): the prewar and
//! wartime samples have unequal variances, so Student's pooled test would be
//! invalid. Every starred cell in Tables 1, 3 and 6 comes from this routine.

use crate::describe::Summary;
use crate::special::student_t_cdf;
use serde::{Deserialize, Serialize};

/// Result of a two-sided Welch's t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WelchTTest {
    /// The t statistic `(mean_a - mean_b) / sqrt(s_a²/n_a + s_b²/n_b)`.
    pub t: f64,
    /// Welch–Satterthwaite effective degrees of freedom (fractional).
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
}

impl WelchTTest {
    /// Whether the difference is statistically significant at the paper's
    /// threshold (`p < 0.05`), i.e. whether the cell gets a `*`.
    pub fn significant(&self) -> bool {
        self.p < 0.05
    }

    /// Renders the p-value the way the paper's tables do (`2.6E-60`), with a
    /// `*` prefix when significant.
    pub fn starred(&self) -> String {
        if self.p.is_nan() {
            return "n/a".to_string();
        }
        let star = if self.significant() { "*" } else { "" };
        format!("{star}{:.1E}", self.p)
    }
}

/// Runs Welch's t-test on two samples.
///
/// Returns `WelchTTest { t: NaN, df: NaN, p: NaN }` when either sample has
/// fewer than two finite observations or both variances are zero — the same
/// cases where scipy returns `nan`, and which the paper sidesteps by only
/// testing cities/ASes with enough tests.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> WelchTTest {
    let sa = Summary::of(a);
    let sb = Summary::of(b);
    welch_from_summaries(&sa, &sb)
}

/// Welch's t-test from precomputed summaries, so period aggregates built with
/// [`Summary::merge`] can be tested without keeping raw samples around.
pub fn welch_from_summaries(sa: &Summary, sb: &Summary) -> WelchTTest {
    let nan = WelchTTest { t: f64::NAN, df: f64::NAN, p: f64::NAN };
    if sa.count() < 2 || sb.count() < 2 {
        return nan;
    }
    let na = sa.count() as f64;
    let nb = sb.count() as f64;
    let va = sa.variance() / na;
    let vb = sb.variance() / nb;
    let denom = (va + vb).sqrt();
    if denom == 0.0 || !denom.is_finite() {
        return nan;
    }
    let t = (sa.mean() - sb.mean()) / denom;
    // Welch–Satterthwaite.
    let df = (va + vb).powi(2) / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    let p = 2.0 * student_t_cdf(-t.abs(), df);
    WelchTTest { t, df, p }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = welch_t_test(&a, &a);
        assert!((r.t).abs() < 1e-12);
        assert!((r.p - 1.0).abs() < 1e-12);
        assert!(!r.significant());
    }

    #[test]
    fn matches_scipy_reference() {
        // Analytically: mean_a = 3, s²_a = 2.5; mean_b = 6, s²_b = 10.
        // t = -3/√(2.5/5 + 10/5) = -1.897366596…, df = 6.25/1.0625 = 5.882352…
        // p cross-checked by independent numerical integration of the t pdf.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = welch_t_test(&a, &b);
        assert!((r.t - (-1.897_366_596_101_027_5)).abs() < 1e-12, "t = {}", r.t);
        assert!((r.df - 5.882_352_941_176_471).abs() < 1e-9, "df = {}", r.df);
        assert!((r.p - 0.107_531_192_9).abs() < 1e-7, "p = {}", r.p);
    }

    #[test]
    fn clearly_different_samples_are_significant() {
        let a: Vec<f64> = (0..200).map(|i| 10.0 + (i % 7) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..200).map(|i| 20.0 + (i % 5) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.significant());
        assert!(r.p < 1e-50, "p = {}", r.p);
        assert!(r.t < 0.0);
    }

    #[test]
    fn tiny_samples_yield_nan() {
        let r = welch_t_test(&[1.0], &[2.0, 3.0]);
        assert!(r.p.is_nan());
        assert!(!r.significant());
        assert_eq!(r.starred(), "n/a");
    }

    #[test]
    fn zero_variance_both_sides_yields_nan() {
        let r = welch_t_test(&[5.0, 5.0, 5.0], &[5.0, 5.0]);
        assert!(r.p.is_nan());
    }

    #[test]
    fn starred_formatting() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 500.0).collect();
        let r = welch_t_test(&a, &b);
        let s = r.starred();
        assert!(s.starts_with('*'), "starred = {s}");
        assert!(s.contains('E'), "starred = {s}");
    }

    #[test]
    fn symmetric_in_sign() {
        let a = [1.0, 2.0, 3.0, 7.0];
        let b = [4.0, 6.0, 8.0, 9.0];
        let r1 = welch_t_test(&a, &b);
        let r2 = welch_t_test(&b, &a);
        assert!((r1.t + r2.t).abs() < 1e-12);
        assert!((r1.p - r2.p).abs() < 1e-12);
        assert!((r1.df - r2.df).abs() < 1e-12);
    }
}
