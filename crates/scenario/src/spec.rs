//! The typed scenario specification.
//!
//! A [`ScenarioSpec`] is a complete, data-driven description of one
//! counterfactual world: which damage processes run (edge / core /
//! displacement), how conflict intensity evolves per military front and
//! per oblast, which border ASes decay/flap/re-home, which cities are
//! besieged, when transit outages strike, how populations migrate, and
//! optionally a *second country* to simulate side by side.
//!
//! The historical scenario (the paper's war) is expressed entirely in this
//! vocabulary — `ndt-conflict`'s model functions evaluate specs rather than
//! hardcoded constants, and the built-in `historical` spec reproduces the
//! pre-refactor curves bit for bit (the evaluation functions here use the
//! exact same floating-point operation order as the original closed-form
//! code).
//!
//! Every behavioural field participates in [`ScenarioSpec::fingerprint`],
//! an FNV-1a content hash over a canonical byte encoding. The runner folds
//! this hash into its config fingerprint, so *editing a scenario file
//! invalidates checkpoints* even when the scenario name is unchanged.
//! Display-only fields (`summary`, `timeline`) are deliberately excluded.

use crate::calendar::Period;
use ndt_geo::{Front, Oblast};

/// One named milestone of a scenario, for `scenario show` output.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Day index (days since 2021-01-01).
    pub day: i64,
    /// Human-readable description.
    pub label: String,
}

/// Exponential step-down of an intensity curve after a date (the Kyiv-axis
/// withdrawal shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntensityDecay {
    /// Absolute day index the decay starts.
    pub after: i64,
    /// Asymptotic floor the curve decays towards.
    pub floor: f64,
    /// Decay time constant in days.
    pub tau: f64,
}

/// Daily conflict-intensity curve for one front (or one oblast override).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntensityCurve {
    /// Base intensity while the front is fully engaged.
    pub peak: f64,
    /// Optional step: from `(day, value)` on, the base becomes `value`
    /// (the Kharkiv mass-shelling surge shape).
    pub step: Option<(i64, f64)>,
    /// Optional exponential step-down (the Kyiv withdrawal shape).
    /// Evaluated after `step`, so a curve uses one or the other.
    pub decay: Option<IntensityDecay>,
}

impl IntensityCurve {
    /// A flat curve at `peak`.
    pub const fn flat(peak: f64) -> Self {
        IntensityCurve { peak, step: None, decay: None }
    }

    /// The curve's base value on an absolute day (before the onset ramp).
    pub fn eval(&self, day: i64) -> f64 {
        let mut base = self.peak;
        if let Some((step_day, to)) = self.step {
            if day >= step_day {
                base = to;
            }
        }
        if let Some(d) = self.decay {
            if day >= d.after {
                let dt = (day - d.after) as f64;
                base = d.floor + (self.peak - d.floor) * (-dt / d.tau).exp();
            }
        }
        base
    }
}

/// Per-oblast daily conflict intensity: a start day, an onset ramp, one
/// curve per military front, and per-oblast override curves.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensitySpec {
    /// Day index the conflict starts; intensity is 0 strictly before it.
    pub start_day: i64,
    /// Onset ramp length in days (`min(t / ramp_days, 1)` multiplies the
    /// curve value, `t` = days since `start_day`).
    pub ramp_days: f64,
    pub north: IntensityCurve,
    pub east: IntensityCurve,
    pub south: IntensityCurve,
    pub center: IntensityCurve,
    pub west: IntensityCurve,
    pub occupied: IntensityCurve,
    /// Oblast-specific curves taking precedence over the front curves.
    pub overrides: Vec<(Oblast, IntensityCurve)>,
}

impl IntensitySpec {
    /// The curve for a front.
    pub fn front_curve(&self, front: Front) -> &IntensityCurve {
        match front {
            Front::North => &self.north,
            Front::East => &self.east,
            Front::South => &self.south,
            Front::Center => &self.center,
            Front::West => &self.west,
            Front::Occupied => &self.occupied,
        }
    }

    /// Conflict intensity for `oblast` on `day` (day index since
    /// 2021-01-01). Zero strictly before `start_day`.
    pub fn at(&self, oblast: Oblast, day: i64) -> f64 {
        if day < self.start_day {
            return 0.0;
        }
        let t = (day - self.start_day) as f64;
        let ramp = (t / self.ramp_days).min(1.0);
        let curve = self
            .overrides
            .iter()
            .find(|(o, _)| *o == oblast)
            .map(|(_, c)| c)
            .unwrap_or_else(|| self.front_curve(oblast.front()));
        curve.eval(day) * ramp
    }

    /// Mean intensity over the paper's 54 wartime days.
    pub fn wartime_mean(&self, oblast: Oblast) -> f64 {
        let (s, e) = Period::Wartime2022.day_range();
        (s..e).map(|d| self.at(oblast, d)).sum::<f64>() / (e - s) as f64
    }
}

/// One modular availability window of a transit rule: the rule's AS is
/// withdrawn on day-since-start `ti` when `from <= ti < to` and
/// `(ti % modulo == remainder) != invert`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapRule {
    pub from: i64,
    /// Exclusive upper bound (`i64::MAX` = open-ended).
    pub to: i64,
    pub modulo: i64,
    pub remainder: i64,
    /// Inverts the modular test ("down except every Nth day").
    pub invert: bool,
}

impl FlapRule {
    /// Whether the adjacency is withdrawn on day-since-start `ti`.
    pub fn matches(&self, ti: i64) -> bool {
        (self.from..self.to).contains(&ti)
            && ((ti.rem_euclid(self.modulo.max(1)) == self.remainder) != self.invert)
    }
}

/// Progressive decay + availability schedule of one border/transit AS's
/// Ukrainian adjacencies.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitRule {
    /// The AS, as a raw AS number.
    pub asn: u32,
    /// Additive loss reaches `loss_coeff` at full ramp.
    pub loss_coeff: f64,
    /// Latency multiplier reaches `1 + latency_coeff` at full ramp.
    pub latency_coeff: f64,
    /// Days over which the decay ramps to full.
    pub ramp_days: f64,
    /// Withdrawal (flap) schedule.
    pub flaps: Vec<FlapRule>,
    /// Permanent withdrawal from this day-since-start on (an operator
    /// re-homing its transit away for good, per Haq et al. 2305.17666).
    pub down_after: Option<i64>,
}

/// A city under siege from `from_day`: extra edge damage multiplied on top
/// of the regional profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SiegeRule {
    pub city: String,
    pub from_day: i64,
    pub tput_mult: f64,
    pub rtt_mult: f64,
    pub loss_mult: f64,
}

/// A transit-network outage on one day.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageRule {
    pub day: i64,
    /// Raw AS number of the affected network.
    pub asn: u32,
    /// Fraction of the day the network was unreachable.
    pub down_fraction: f64,
}

/// Shape of a key-city activity override curve (argument `t` = days since
/// the scenario start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CityCurve {
    /// 1.0 until `after`, then `max(floor + coeff * exp(-(t-after)/tau),
    /// clamp_min)` — the Mariupol-collapse / Kharkiv-step shapes.
    DecayAfter { after: f64, floor: f64, coeff: f64, tau: f64, clamp_min: f64 },
    /// `1 + gain * min(t/tau, 1)` — the Lviv-influx / Kyiv-exodus shapes.
    Ramp { gain: f64, tau: f64 },
}

impl CityCurve {
    /// Evaluates the curve at `t` days since the scenario start.
    pub fn eval(&self, t: f64) -> f64 {
        match *self {
            CityCurve::DecayAfter { after, floor, coeff, tau, clamp_min } => {
                if t < after {
                    1.0
                } else {
                    (floor + coeff * (-(t - after) / tau).exp()).max(clamp_min)
                }
            }
            CityCurve::Ramp { gain, tau } => 1.0 + gain * (t / tau).min(1.0),
        }
    }
}

/// A key-city activity override.
#[derive(Debug, Clone, PartialEq)]
pub struct CityOverride {
    pub city: String,
    pub curve: CityCurve,
}

/// Behavioural test-count spike window: days in `[from, to)` multiply
/// activity by `mult`. First matching rule wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeRule {
    pub from: i64,
    pub to: i64,
    pub mult: f64,
}

/// One wave of population migration: a fraction of the clients living on a
/// front relocates (or leaves the country) over a window of days.
///
/// Participation and the per-client migration day are pure functions of
/// `(client address, salt)`, so waves are bit-identical across thread
/// counts and shard boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationWave {
    /// Clients whose home oblast is on this front participate.
    pub from_front: Front,
    /// Destination city by name; `None` = the client leaves the country
    /// (stops producing tests in the national sample).
    pub dest_city: Option<String>,
    /// Fraction of the front's clients that migrate, in `[0, 1]`.
    pub fraction: f64,
    /// First possible migration day (absolute day index).
    pub start_day: i64,
    /// Migration days spread uniformly over `[start_day, start_day +
    /// window_days)`.
    pub window_days: i64,
    /// Salt for the per-client participation/timing hash.
    pub salt: u64,
}

/// A second national topology simulated side by side for asymmetric
/// two-country comparisons (Mizrahi, arXiv:2205.08912).
#[derive(Debug, Clone, PartialEq)]
pub struct CountrySpec {
    /// Display name of the second country.
    pub name: String,
    /// Scenario (by registered name) the second country runs under.
    pub scenario: String,
    /// XORed into the primary seed so the two populations are independent.
    pub seed_salt: u64,
    /// The second country's corpus scale relative to the primary run.
    pub scale_mult: f64,
}

/// A complete, self-contained scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry name (`--scenario NAME`).
    pub name: String,
    /// One-line description for `scenario list`.
    pub summary: String,
    /// Milestones for `scenario show` (display only, not fingerprinted).
    pub timeline: Vec<TimelineEvent>,
    /// Edge damage: per-client profile degradation, sieges, local churn.
    pub edge_damage: bool,
    /// Core damage: border decay, transit flaps, outages.
    pub core_damage: bool,
    /// Displacement: city activity curves, count spikes, migrations.
    pub displacement: bool,
    /// Scales the damage-profile deltas towards identity (1.0 = the full
    /// calibrated Table 3/4 targets; 0.5 = half the deviation). Lets a
    /// spec describe a milder or harsher war without re-deriving targets.
    pub damage_attenuation: f64,
    pub intensity: IntensitySpec,
    pub transit: Vec<TransitRule>,
    pub sieges: Vec<SiegeRule>,
    pub outages: Vec<OutageRule>,
    /// Key-city displacement override curves.
    pub curves: Vec<CityOverride>,
    pub spikes: Vec<SpikeRule>,
    pub migrations: Vec<MigrationWave>,
    pub second_country: Option<CountrySpec>,
}

impl ScenarioSpec {
    /// Activity spike multiplier on `day` (first matching rule, else 1).
    pub fn spike(&self, day: i64) -> f64 {
        self.spikes
            .iter()
            .find(|s| (s.from..s.to).contains(&day))
            .map(|s| s.mult)
            .unwrap_or(1.0)
    }

    /// The siege rule active for `city` on `day`, if any.
    pub fn siege(&self, city: &str, day: i64) -> Option<&SiegeRule> {
        self.sieges.iter().find(|s| s.city == city && day >= s.from_day)
    }

    /// The city override curve for `city`, if any.
    pub fn city_override(&self, city: &str) -> Option<&CityCurve> {
        self.curves.iter().find(|c| c.city == city).map(|c| &c.curve)
    }

    /// FNV-1a content hash over the canonical encoding of every
    /// behavioural field. Two specs with the same fingerprint generate the
    /// same world; an edited scenario file changes the fingerprint and so
    /// invalidates checkpoints keyed on it.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_at(0)
    }

    fn fingerprint_at(&self, depth: u8) -> u64 {
        let mut buf = Vec::with_capacity(512);
        put_str(&mut buf, &self.name);
        buf.push(self.edge_damage as u8);
        buf.push(self.core_damage as u8);
        buf.push(self.displacement as u8);
        put_f64(&mut buf, self.damage_attenuation);
        put_i64(&mut buf, self.intensity.start_day);
        put_f64(&mut buf, self.intensity.ramp_days);
        for front in [Front::North, Front::East, Front::South, Front::Center, Front::West, Front::Occupied] {
            put_curve(&mut buf, self.intensity.front_curve(front));
        }
        put_u64(&mut buf, self.intensity.overrides.len() as u64);
        for (oblast, curve) in &self.intensity.overrides {
            put_str(&mut buf, oblast.name());
            put_curve(&mut buf, curve);
        }
        put_u64(&mut buf, self.transit.len() as u64);
        for t in &self.transit {
            put_u64(&mut buf, t.asn as u64);
            put_f64(&mut buf, t.loss_coeff);
            put_f64(&mut buf, t.latency_coeff);
            put_f64(&mut buf, t.ramp_days);
            put_u64(&mut buf, t.flaps.len() as u64);
            for f in &t.flaps {
                put_i64(&mut buf, f.from);
                put_i64(&mut buf, f.to);
                put_i64(&mut buf, f.modulo);
                put_i64(&mut buf, f.remainder);
                buf.push(f.invert as u8);
            }
            put_i64(&mut buf, t.down_after.unwrap_or(i64::MIN));
        }
        put_u64(&mut buf, self.sieges.len() as u64);
        for s in &self.sieges {
            put_str(&mut buf, &s.city);
            put_i64(&mut buf, s.from_day);
            put_f64(&mut buf, s.tput_mult);
            put_f64(&mut buf, s.rtt_mult);
            put_f64(&mut buf, s.loss_mult);
        }
        put_u64(&mut buf, self.outages.len() as u64);
        for o in &self.outages {
            put_i64(&mut buf, o.day);
            put_u64(&mut buf, o.asn as u64);
            put_f64(&mut buf, o.down_fraction);
        }
        put_u64(&mut buf, self.curves.len() as u64);
        for c in &self.curves {
            put_str(&mut buf, &c.city);
            match c.curve {
                CityCurve::DecayAfter { after, floor, coeff, tau, clamp_min } => {
                    buf.push(0);
                    for v in [after, floor, coeff, tau, clamp_min] {
                        put_f64(&mut buf, v);
                    }
                }
                CityCurve::Ramp { gain, tau } => {
                    buf.push(1);
                    put_f64(&mut buf, gain);
                    put_f64(&mut buf, tau);
                }
            }
        }
        put_u64(&mut buf, self.spikes.len() as u64);
        for s in &self.spikes {
            put_i64(&mut buf, s.from);
            put_i64(&mut buf, s.to);
            put_f64(&mut buf, s.mult);
        }
        put_u64(&mut buf, self.migrations.len() as u64);
        for m in &self.migrations {
            put_str(&mut buf, front_name(m.from_front));
            put_str(&mut buf, m.dest_city.as_deref().unwrap_or(""));
            put_f64(&mut buf, m.fraction);
            put_i64(&mut buf, m.start_day);
            put_i64(&mut buf, m.window_days);
            put_u64(&mut buf, m.salt);
        }
        match &self.second_country {
            None => buf.push(0),
            Some(cs) => {
                buf.push(1);
                put_str(&mut buf, &cs.name);
                put_str(&mut buf, &cs.scenario);
                put_u64(&mut buf, cs.seed_salt);
                put_f64(&mut buf, cs.scale_mult);
                // Fold in the resolved second-country spec so editing *its*
                // definition also invalidates checkpoints. Depth-guarded:
                // a second country cannot itself nest a third.
                if depth == 0 {
                    if let Some(b) = crate::Scenario::by_name(&cs.scenario) {
                        put_u64(&mut buf, b.spec().fingerprint_at(1));
                    }
                }
            }
        }
        fnv1a64(&buf)
    }
}

/// Display name of a front (stable; used in scenario files and hashes).
pub fn front_name(front: Front) -> &'static str {
    match front {
        Front::North => "north",
        Front::East => "east",
        Front::South => "south",
        Front::Center => "center",
        Front::West => "west",
        Front::Occupied => "occupied",
    }
}

/// Parses a front name as written in scenario files.
pub fn front_by_name(name: &str) -> Option<Front> {
    match name.to_ascii_lowercase().as_str() {
        "north" => Some(Front::North),
        "east" => Some(Front::East),
        "south" => Some(Front::South),
        "center" => Some(Front::Center),
        "west" => Some(Front::West),
        "occupied" => Some(Front::Occupied),
        _ => None,
    }
}

fn put_curve(buf: &mut Vec<u8>, c: &IntensityCurve) {
    put_f64(buf, c.peak);
    match c.step {
        None => buf.push(0),
        Some((d, v)) => {
            buf.push(1);
            put_i64(buf, d);
            put_f64(buf, v);
        }
    }
    match c.decay {
        None => buf.push(0),
        Some(d) => {
            buf.push(1);
            put_i64(buf, d.after);
            put_f64(buf, d.floor);
            put_f64(buf, d.tau);
        }
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// FNV-1a over a byte slice (the same algorithm `ndt_store::wire` uses;
/// duplicated here so the scenario crate stays dependency-light).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
