//! Dataset wrapper: the two "BigQuery tables" plus period helpers.

use ndt_bq::{Query, Table, Value};
use ndt_conflict::Period;
use ndt_mlab::schema::{empty_unified_table, push_unified_row};
use ndt_mlab::{Dataset, Scamper1Row, SimConfig, Simulator, UnifiedDownloadRow};

/// The generated corpus, ready for analysis.
pub struct StudyData {
    /// Raw dataset (scamper rows consumed natively by the §5 analyses).
    pub raw: Dataset,
    /// `ndt.unified_download` as a queryable table (§4 analyses).
    pub unified: Table,
    /// Inclusive day ranges with no unified rows *inside an otherwise
    /// populated study window* — whole days lost to e.g. a quarantined
    /// store shard. A clean simulation populates every day of every
    /// [`Period`] window, so this is empty for intact corpora; windows
    /// with no rows at all are treated as not-simulated, not missing, so
    /// a degraded corpus and a fresh run on the same surviving data
    /// compute identical gaps.
    pub day_gaps: Vec<(i64, i64)>,
    /// Second-country digest for asymmetric scenarios, attached by the
    /// pipeline (a `country-b` stage) or the columnar store loader
    /// (`country-b.digest.txt`); `None` for single-country corpora. Feeds
    /// the `table_ab` analysis stage.
    pub second_country: Option<crate::country::CountryDigest>,
}

/// Day ranges of each [`Period`] window that hold no unified rows, for
/// windows that hold at least one. See [`StudyData::day_gaps`].
fn compute_day_gaps(unified: &Table) -> Vec<(i64, i64)> {
    let days: std::collections::BTreeSet<i64> = unified.query().ints("day").into_iter().collect();
    compute_day_gaps_from(&days)
}

/// [`compute_day_gaps`] over an already-collected distinct-day set (the
/// vectorized store loader aggregates days page-by-page instead of
/// re-scanning the finished table).
fn compute_day_gaps_from(days: &std::collections::BTreeSet<i64>) -> Vec<(i64, i64)> {
    let mut gaps = Vec::new();
    for p in Period::ALL {
        let (s, e) = p.day_range();
        if !(s..e).any(|d| days.contains(&d)) {
            continue;
        }
        let mut d = s;
        while d < e {
            if days.contains(&d) {
                d += 1;
                continue;
            }
            let lo = d;
            while d < e && !days.contains(&d) {
                d += 1;
            }
            gaps.push((lo, d - 1));
        }
    }
    gaps
}

impl StudyData {
    /// Generates a corpus with the given simulator configuration.
    pub fn generate(config: SimConfig) -> Self {
        let raw = Simulator::new(config).run();
        Self::from_dataset(raw)
    }

    /// Wraps an already-generated dataset.
    pub fn from_dataset(raw: Dataset) -> Self {
        let unified = raw.unified_table();
        let day_gaps = compute_day_gaps(&unified);
        Self { raw, unified, day_gaps, second_country: None }
    }

    /// Unified rows within a period.
    pub fn period(&self, p: Period) -> Query<'_> {
        let (s, e) = p.day_range();
        self.unified.query().filter_int_range("day", s, e)
    }

    /// Unified rows of one labeled city within a period (Table 1's slices).
    pub fn city_period(&self, city: &str, p: Period) -> Query<'_> {
        self.period(p).filter_eq("city", &Value::from(city))
    }

    /// Unified rows of one labeled region within a period.
    pub fn oblast_period(&self, oblast: &str, p: Period) -> Query<'_> {
        self.period(p).filter_eq("oblast", &Value::from(oblast))
    }

    /// Scamper rows within a period.
    pub fn traces_in(&self, p: Period) -> impl Iterator<Item = &Scamper1Row> {
        let (s, e) = p.day_range();
        self.raw.traces.iter().filter(move |r| (s..e).contains(&r.day))
    }

    /// Total unified rows.
    pub fn unified_len(&self) -> usize {
        self.unified.len()
    }
}

/// Incremental [`StudyData`] construction for callers that stream the
/// corpus in pieces (the columnar store's `report --from-store` path)
/// instead of handing over one [`Dataset`].
///
/// Rows are ingested into the unified table as they arrive, in arrival
/// order, through the same `push_unified_row` the batch path uses — so a
/// builder fed the corpus shard-by-shard produces a [`StudyData`] whose
/// table is cell-for-cell identical to `StudyData::from_dataset` on the
/// concatenated dataset.
#[derive(Default)]
pub struct StudyDataBuilder {
    raw: Dataset,
    unified: Option<Table>,
}

/// A consistent builder position, taken with [`StudyDataBuilder::mark`]
/// before a shard starts streaming in and handed back to
/// [`StudyDataBuilder::rollback`] if the shard fails mid-stream — the
/// degrade contract needs a failed shard to contribute *nothing*.
#[derive(Debug, Clone, Copy)]
pub struct BuilderMark {
    unified_rows: usize,
    ndt_rows: usize,
    trace_rows: usize,
}

impl StudyDataBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends unified rows (ingesting them into the table immediately).
    pub fn push_ndt_rows(&mut self, rows: Vec<UnifiedDownloadRow>) {
        let table = self.unified.get_or_insert_with(empty_unified_table);
        for r in &rows {
            push_unified_row(table, r);
        }
        self.raw.ndt.extend(rows);
    }

    /// Ingests one columnar batch straight into the unified table —
    /// cell-for-cell what [`Self::push_ndt_rows`] on the same rows would
    /// produce, but without materializing a single `UnifiedDownloadRow`:
    /// `raw.ndt` stays empty, so the vectorized store loader's resident
    /// row footprint is the in-flight batch window, not the corpus.
    pub fn push_unified_batch(
        &mut self,
        batch: &ndt_mlab::columnar::UnifiedBatch,
    ) -> std::io::Result<()> {
        let table = self.unified.get_or_insert_with(empty_unified_table);
        ndt_mlab::columnar::push_unified_batch(table, batch).map_err(|e| e.into_io())
    }

    /// Appends scamper trace rows.
    pub fn push_trace_rows(&mut self, rows: Vec<Scamper1Row>) {
        self.raw.traces.extend(rows);
    }

    /// Unified rows ingested so far (row-wise and batch-wise combined).
    pub fn unified_rows(&self) -> usize {
        self.unified.as_ref().map_or(0, Table::len)
    }

    /// Current position, for a later [`Self::rollback`].
    pub fn mark(&self) -> BuilderMark {
        BuilderMark {
            unified_rows: self.unified_rows(),
            ndt_rows: self.raw.ndt.len(),
            trace_rows: self.raw.traces.len(),
        }
    }

    /// Discards everything ingested after `mark` (table rows, raw rows,
    /// trace rows). Dictionary entries interned by discarded rows may
    /// linger in the table's dictionaries; they are unreferenced, and
    /// every value-level accessor and comparison is row-driven, so they
    /// are unobservable.
    pub fn rollback(&mut self, mark: BuilderMark) {
        if let Some(table) = self.unified.as_mut() {
            table.truncate(mark.unified_rows);
        }
        self.raw.ndt.truncate(mark.ndt_rows);
        self.raw.traces.truncate(mark.trace_rows);
    }

    /// Finalizes into a [`StudyData`]. Day gaps are computed from the
    /// ingested table by the same rule as [`StudyData::from_dataset`], so
    /// a builder fed only surviving shards reports exactly the gaps a
    /// batch run over the same rows would.
    pub fn finish(self) -> StudyData {
        let unified = self.unified.unwrap_or_else(empty_unified_table);
        let day_gaps = compute_day_gaps(&unified);
        StudyData { raw: self.raw, unified, day_gaps, second_country: None }
    }

    /// [`Self::finish`] with the distinct-day set already in hand (the
    /// vectorized loader folds it out of a page-fed day aggregation, so
    /// the finished table never needs a full `day` re-scan). The set must
    /// cover exactly the ingested rows' days — gap computation is the
    /// same rule either way.
    pub fn finish_with_days(self, days: &std::collections::BTreeSet<i64>) -> StudyData {
        let unified = self.unified.unwrap_or_else(empty_unified_table);
        let day_gaps = compute_day_gaps_from(days);
        StudyData { raw: self.raw, unified, day_gaps, second_country: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_support::shared_small;

    #[test]
    fn periods_partition_unified_rows() {
        let data = shared_small();
        let total: usize = Period::ALL.iter().map(|p| data.period(*p).count()).sum();
        assert_eq!(total, data.unified_len(), "every row belongs to exactly one period");
    }

    #[test]
    fn city_slices_are_subsets() {
        let data = shared_small();
        let kyiv = data.city_period("Kyiv", Period::Prewar2022).count();
        let all = data.period(Period::Prewar2022).count();
        assert!(kyiv > 0 && kyiv < all);
    }

    #[test]
    fn clean_corpus_has_no_day_gaps() {
        assert_eq!(shared_small().day_gaps, Vec::<(i64, i64)>::new());
    }

    #[test]
    fn dropped_days_inside_populated_windows_become_gaps() {
        let full = shared_small();
        // Rebuild the corpus with two day runs removed — one mid-window,
        // one spanning a window edge — as if the shards holding them had
        // been quarantined.
        let lost = |d: i64| (20..25).contains(&d) || (54..60).contains(&d);
        let mut b = StudyDataBuilder::new();
        b.push_ndt_rows(full.raw.ndt.iter().filter(|r| !lost(r.day)).cloned().collect());
        b.push_trace_rows(full.raw.traces.iter().filter(|r| !lost(r.day)).cloned().collect());
        let degraded = b.finish();
        assert_eq!(degraded.day_gaps, vec![(20, 24), (54, 59)]);
        // And a window with no rows at all is "not simulated", not a gap.
        let mut empty_window = StudyDataBuilder::new();
        empty_window.push_ndt_rows(
            full.raw.ndt.iter().filter(|r| r.day >= 365).cloned().collect(),
        );
        assert_eq!(empty_window.finish().day_gaps, Vec::<(i64, i64)>::new());
    }

    #[test]
    fn traces_filter_by_day() {
        let data = shared_small();
        let (s, e) = Period::Wartime2022.day_range();
        assert!(data.traces_in(Period::Wartime2022).all(|r| (s..e).contains(&r.day)));
        assert!(data.traces_in(Period::Wartime2022).next().is_some());
    }
}

/// Shared fixtures so the per-experiment test modules don't each pay for a
/// fresh simulation.
pub mod test_support {
    use super::*;
    use std::sync::OnceLock;

    static SMALL: OnceLock<StudyData> = OnceLock::new();
    static MEDIUM: OnceLock<StudyData> = OnceLock::new();

    /// A ~6%-volume corpus, shared by fast unit tests.
    pub fn shared_small() -> &'static StudyData {
        SMALL.get_or_init(|| StudyData::generate(SimConfig::small(1234)))
    }

    /// A ~20%-volume corpus for analyses that need statistical depth
    /// (Welch stars, top-1000 connections).
    pub fn shared_medium() -> &'static StudyData {
        MEDIUM.get_or_init(|| {
            StudyData::generate(SimConfig { scale: 0.2, seed: 99, ..SimConfig::default() })
        })
    }
}
