//! Columnar corpus store: `generate --format columnar` and
//! `report --from-store`.
//!
//! Corpus generation writes each day-range shard as a pair of `ndt-store`
//! files — `<stem>.unified.ndts` and `<stem>.traces.ndts` — where the
//! stem carries the day range and the run's config fingerprint:
//! `shard-036-063-<fp16>`. Simulation stays sequential (one reused
//! simulator, same bytes as the in-memory pipeline); encoding and I/O
//! fan out to background writer threads, so shard N+1 simulates while
//! shard N compresses. Every file goes through [`AtomicFile`], and the
//! `STORE.txt` manifest is written **last**, so a killed run leaves
//! either no manifest (partial store, next run resumes shard-by-shard)
//! or a manifest describing only complete, validated files.
//!
//! `report --from-store` never runs the simulator: it streams the
//! manifest's shards back through [`ndt_mlab::columnar`], rebuilds
//! [`ndt_analysis::StudyData`] row-for-row in shard order, and runs the exact same
//! analysis stages as the in-memory path — so its report and artifacts
//! are byte-identical to `report`'s at every scale/faults/threads
//! combination (enforced by `tests/store.rs`).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;

use ndt_analysis::{assemble_staged_report, StudyDataBuilder};
use ndt_mlab::columnar::{scan_traces, scan_unified, write_traces, write_unified, RowFilter};
use ndt_mlab::sim::SimConfig;
use ndt_mlab::Simulator;
use ndt_store::{wire, Shard, WriteStats};
use ndt_vfs::VfsHandle;

use crate::atomic::{rename_reliable, sweep_orphan_temps, AtomicFile};
use crate::checkpoint::config_fingerprint;
use crate::executor::{ExecPolicy, StageError};
use crate::retry::retry_io;
use crate::pipeline::{
    Pipeline, PipelineConfig, PipelineOutcome, StageRecord, StageStatus, CORPUS_SHARD_DAYS,
};

/// Manifest file name inside a store directory.
pub const STORE_MANIFEST: &str = "STORE.txt";
/// Directory (under the store) that damaged shard files are moved into.
pub const QUARANTINE_DIR: &str = ".quarantine";
/// First line of a valid manifest.
const MANIFEST_HEADER: &str = "ukraine-ndt store v1";
/// Writer threads kept in flight while the simulator works ahead.
const WRITERS_IN_FLIGHT: usize = 4;

/// What `generate --format columnar` produced.
#[derive(Debug)]
pub struct StoreSummary {
    /// Store directory.
    pub dir: PathBuf,
    /// Aggregated byte/row accounting over the shards **written this
    /// run** (resumed shards are validated, not rewritten, and do not
    /// contribute).
    pub stats: WriteStats,
    /// Shard stems in day order, e.g. `shard-000-027-0123456789abcdef`.
    pub shards: Vec<String>,
}

fn shard_stem(lo: i64, hi: i64, fingerprint: u64) -> String {
    format!("shard-{lo:03}-{hi:03}-{fingerprint:016x}")
}

/// Parses the `[lo, hi)` day range back out of a shard stem.
fn stem_day_range(stem: &str) -> Option<(i64, i64)> {
    let mut parts = stem.split('-');
    if parts.next() != Some("shard") {
        return None;
    }
    let lo = parts.next()?.parse().ok()?;
    let hi = parts.next()?.parse().ok()?;
    (lo < hi).then_some((lo, hi))
}

fn unified_name(stem: &str) -> String {
    format!("{stem}.unified.ndts")
}

fn traces_name(stem: &str) -> String {
    format!("{stem}.traces.ndts")
}

/// True when both shard files exist, pass structural validation, and
/// every page payload matches its header checksum — the resume test for
/// one shard. The payload sweep matters: [`Shard::open`] alone accepts a
/// file whose page bodies were corrupted in place (structure and footer
/// intact), which resume must rewrite rather than trust.
fn shard_is_complete(vfs: &VfsHandle, dir: &Path, stem: &str) -> bool {
    let ok = |name: String| {
        Shard::open_with(vfs, dir.join(name)).and_then(|s| s.verify_payloads()).is_ok()
    };
    ok(unified_name(stem)) && ok(traces_name(stem))
}

/// Generates the corpus into `store_dir` as columnar shard files.
///
/// With `cfg.resume`, shards whose files already exist under the same
/// config fingerprint and validate fully — structure and every page
/// payload checksum — are kept as-is ([`StageStatus::Resumed`]);
/// anything else is regenerated. The manifest is rewritten at the end
/// of every successful run.
pub fn run_store_generate(
    cfg: &PipelineConfig,
    store_dir: &Path,
) -> io::Result<(StoreSummary, Vec<StageRecord>)> {
    let vfs = &cfg.vfs;
    vfs.create_dir_all(store_dir)?;
    // A killed predecessor may have left hidden atomic-write temporaries;
    // clear them before this run creates its own.
    if let Ok(swept) = sweep_orphan_temps(vfs, store_dir) {
        if swept > 0 {
            ndt_obs::incr_process("tmp_swept", swept as u64);
        }
    }
    let fingerprint = config_fingerprint(&cfg.sim);
    let sim_cfg: SimConfig = cfg.sim;
    let mut records = Vec::new();
    let mut stems = Vec::new();
    let mut total = WriteStats::default();
    let mut sim: Option<Simulator> = None;
    let mut in_flight: Vec<thread::JoinHandle<io::Result<WriteStats>>> = Vec::new();

    let drain_one =
        |in_flight: &mut Vec<thread::JoinHandle<io::Result<WriteStats>>>| -> io::Result<WriteStats> {
            let handle = in_flight.remove(0);
            match handle.join() {
                Ok(result) => result,
                Err(_) => Err(io::Error::other("shard writer thread panicked")),
            }
        };

    for range in sim_cfg.shards(CORPUS_SHARD_DAYS) {
        let stem = shard_stem(range.start, range.end, fingerprint);
        let name = format!("store:{}-{}", range.start, range.end);
        if cfg.resume && shard_is_complete(vfs, store_dir, &stem) {
            ndt_obs::incr_process("store.shards_resumed", 1);
            ndt_obs::info!("[runner] stage {name}: shard files validated, resumed");
            records.push(StageRecord { name, status: StageStatus::Resumed });
            stems.push(stem);
            continue;
        }
        let span = ndt_obs::span(&format!("stage.{name}"));
        let part = {
            let sim = sim.get_or_insert_with(|| Simulator::new(sim_cfg));
            sim.run_range(range.clone())
        };
        drop(span);
        // Hand the dataset to a background writer so the next shard can
        // simulate while this one encodes; keep a bounded number in
        // flight and surface the oldest writer's error before queueing
        // more work.
        let dir = store_dir.to_path_buf();
        let wstem = stem.clone();
        let wvfs = vfs.clone();
        // Key each writer's retry jitter by its stem, so concurrent
        // writers hitting the same transient stall back off on distinct
        // schedules instead of retrying in lockstep.
        let retry = cfg.exec.retry.with_jitter_key(wire::fnv1a64(stem.as_bytes()));
        let handle = thread::spawn(move || -> io::Result<WriteStats> {
            let _span = ndt_obs::span("store.write");
            retry_io(&retry, || {
                // Retry the whole pair: a failed attempt's temporaries are
                // discarded by AtomicFile, so re-running from scratch is
                // idempotent and the destination only ever sees a commit.
                let unified = AtomicFile::create_with(&wvfs, dir.join(unified_name(&wstem)))?;
                let (unified, ustats) =
                    write_unified(unified, &part.ndt).map_err(|e| e.into_io())?;
                unified.commit()?;
                let traces = AtomicFile::create_with(&wvfs, dir.join(traces_name(&wstem)))?;
                let (traces, tstats) =
                    write_traces(traces, &part.traces).map_err(|e| e.into_io())?;
                traces.commit()?;
                let mut stats = ustats;
                stats.merge(&tstats);
                Ok(stats)
            })
        });
        in_flight.push(handle);
        if in_flight.len() >= WRITERS_IN_FLIGHT {
            total.merge(&drain_one(&mut in_flight)?);
        }
        ndt_obs::incr_process("store.shards_written", 1);
        records.push(StageRecord { name, status: StageStatus::Computed });
        stems.push(stem);
    }
    while !in_flight.is_empty() {
        total.merge(&drain_one(&mut in_flight)?);
    }

    // Deterministic ratio gauge: integer percent of raw-LE size. Only
    // meaningful when this run actually wrote bytes.
    if let Some(pct) = (total.bytes_file * 100).checked_div(total.bytes_raw) {
        ndt_obs::set_gauge("store.encoded_pct_of_raw", pct);
    }

    // Manifest last: readers only ever see a complete store.
    let mut manifest = String::new();
    manifest.push_str(MANIFEST_HEADER);
    manifest.push('\n');
    manifest.push_str(&format!("fingerprint {fingerprint:016x}\n"));
    for stem in &stems {
        manifest.push_str(&format!("shard {stem}\n"));
    }
    crate::atomic::write_atomic_with(vfs, store_dir.join(STORE_MANIFEST), manifest.as_bytes())?;

    Ok((StoreSummary { dir: store_dir.to_path_buf(), stats: total, shards: stems }, records))
}

/// Parses a store manifest into shard stems (day order).
fn read_manifest(vfs: &VfsHandle, store_dir: &Path) -> io::Result<Vec<String>> {
    let path = store_dir.join(STORE_MANIFEST);
    let text = vfs.read_to_string(&path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("cannot open store manifest {}: {e}", path.display()),
        )
    })?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a store manifest", path.display()),
        ));
    }
    let mut stems = Vec::new();
    for line in lines {
        if line.is_empty() || line.starts_with("fingerprint ") {
            continue;
        }
        match line.strip_prefix("shard ") {
            Some(stem) if !stem.contains(['/', '\\']) => stems.push(stem.to_string()),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed manifest line: {line:?}"),
                ));
            }
        }
    }
    if stems.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} lists no shards", path.display()),
        ));
    }
    Ok(stems)
}

/// Reads the config fingerprint a store's manifest records — the same
/// value [`config_fingerprint`] produced for the run that generated it.
/// The serving layer keys its result cache on this: two stores generated
/// from the same configuration answer identically, so their cache entries
/// may as well.
pub fn read_store_fingerprint(vfs: &VfsHandle, store_dir: &Path) -> io::Result<u64> {
    let path = store_dir.join(STORE_MANIFEST);
    let text = vfs.read_to_string(&path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("cannot open store manifest {}: {e}", path.display()),
        )
    })?;
    text.lines()
        .find_map(|l| l.strip_prefix("fingerprint "))
        .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} records no fingerprint", path.display()),
            )
        })
}

/// Reads both files of one shard fully into memory — nothing is ingested
/// until the whole pair decoded cleanly, so a mid-shard failure never
/// leaves half a shard's rows in the builder.
fn read_shard_pair(
    vfs: &VfsHandle,
    store_dir: &Path,
    stem: &str,
) -> Result<(Vec<ndt_mlab::UnifiedDownloadRow>, Vec<ndt_mlab::Scamper1Row>), io::Error> {
    let unified =
        Shard::open_with(vfs, store_dir.join(unified_name(stem))).map_err(|e| e.into_io())?;
    let ndt_rows = scan_unified(&unified, RowFilter::default()).map_err(|e| e.into_io())?;
    let traces =
        Shard::open_with(vfs, store_dir.join(traces_name(stem))).map_err(|e| e.into_io())?;
    let trace_rows = scan_traces(&traces, RowFilter::default()).map_err(|e| e.into_io())?;
    Ok((ndt_rows, trace_rows))
}

/// Moves both files of a damaged shard into `<store>/.quarantine/` so the
/// next read doesn't trip over them again. Best-effort: a file that
/// cannot be moved (already gone, or the move itself faults) is left
/// behind — quarantine is bookkeeping, never a second failure source.
fn quarantine_shard(vfs: &VfsHandle, store_dir: &Path, stem: &str) {
    let qdir = store_dir.join(QUARANTINE_DIR);
    if vfs.create_dir_all(&qdir).is_err() {
        return;
    }
    for name in [unified_name(stem), traces_name(stem)] {
        let from = store_dir.join(&name);
        if vfs.exists(&from) {
            let _ = rename_reliable(vfs, &from, &qdir.join(&name), &crate::RetryPolicy::DEFAULT);
        }
    }
}

/// Streams a store directory back into a [`ndt_analysis::StudyData`], in
/// manifest (day) order, **degrading instead of dying**: a shard that is
/// missing, truncated, or fails its payload checksums is quarantined
/// (moved to `<store>/.quarantine/`, counted under
/// `store.shards_quarantined` / `store.days_missing`) and the load
/// continues with the surviving shards. Each quarantined shard is
/// returned as a failed `store:<stem>` [`StageRecord`], so the caller
/// exits with the partial-success code; the surviving rows are exactly
/// what a clean store holding only those shards would yield, which is
/// what keeps a degraded report byte-identical to a clean run over the
/// same survivors. Only a missing or malformed *manifest* is a hard
/// error — without it there is no shard list to degrade over.
pub fn load_study_data(
    vfs: &VfsHandle,
    store_dir: &Path,
) -> io::Result<(ndt_analysis::StudyData, Vec<StageRecord>)> {
    let stems = read_manifest(vfs, store_dir)?;
    let _span = ndt_obs::span("stage.store-read");
    let started = std::time::Instant::now();
    let mut builder = StudyDataBuilder::new();
    let mut records = Vec::new();
    let mut rows_total: u64 = 0;
    for stem in &stems {
        match read_shard_pair(vfs, store_dir, stem) {
            Ok((ndt_rows, trace_rows)) => {
                rows_total += ndt_rows.len() as u64 + trace_rows.len() as u64;
                builder.push_ndt_rows(ndt_rows);
                builder.push_trace_rows(trace_rows);
            }
            Err(e) => {
                quarantine_shard(vfs, store_dir, stem);
                ndt_obs::incr("store.shards_quarantined", 1);
                if let Some((lo, hi)) = stem_day_range(stem) {
                    ndt_obs::incr("store.days_missing", (hi - lo) as u64);
                }
                ndt_obs::error!("[runner] shard {stem}: quarantined: {e}");
                records.push(StageRecord {
                    name: format!("store:{stem}"),
                    status: StageStatus::Failed(StageError::Failed(format!(
                        "shard quarantined: {e}"
                    ))),
                });
            }
        }
    }
    // Wall-clock throughput is machine-dependent: process namespace only.
    let secs = started.elapsed().as_secs_f64();
    if secs > 0.0 {
        ndt_obs::incr_process("store.scan_rows_per_sec", (rows_total as f64 / secs) as u64);
    }
    Ok((builder.finish(), records))
}

/// The `report --from-store` command: stream the corpus from a columnar
/// store and run the same analysis stages as the in-memory pipeline.
/// Report text and artifacts are byte-identical to [`run_report`]'s for
/// the config that generated the store.
///
/// [`run_report`]: crate::pipeline::run_report
pub fn run_report_from_store(
    store_dir: &Path,
    exec: ExecPolicy,
    vfs: &VfsHandle,
) -> io::Result<PipelineOutcome> {
    let (data, quarantined) = load_study_data(vfs, store_dir)?;
    // No checkpoint store: the shard files are the persistent form, and
    // analyses over them are cheaper to re-run than to verify.
    let mut p = Pipeline { store: None, resume: false, exec, records: Vec::new() };
    let outputs = p.analyses(Arc::new(data));
    // Quarantined shards are *data* degradation, not analysis failures:
    // they surface through the coverage machinery (missing day ranges in
    // the report footer), while the report body stays byte-identical to a
    // clean run over the surviving shards. Their failed records still
    // join the ledger so the CLI exits with the partial-success code.
    let report = assemble_staged_report(&outputs, &p.failures());
    let artifacts = outputs
        .iter()
        .flat_map(|o| o.artifacts.iter().map(|(f, c)| (f.to_string(), c.clone())))
        .collect();
    let mut records = quarantined;
    records.append(&mut p.records);
    Ok(PipelineOutcome { report, artifacts, records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_report;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("ndt-runner-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn tiny(seed: u64) -> SimConfig {
        SimConfig { scale: 0.01, ..SimConfig::small(seed) }
    }

    #[test]
    fn store_report_matches_in_memory_report() {
        let d = tmpdir("eq");
        let mut cfg = PipelineConfig::new(tiny(41), d.join("out"));
        cfg.checkpoints = false;
        let in_memory = run_report(&cfg).expect("in-memory report");
        assert!(in_memory.is_complete());

        let store_dir = d.join("store");
        let (summary, records) = run_store_generate(&cfg, &store_dir).expect("store generate");
        assert!(records.iter().all(|r| r.status == StageStatus::Computed));
        assert!(summary.stats.rows > 0);
        let from_store =
            run_report_from_store(&store_dir, ExecPolicy::default(), &VfsHandle::real()).expect("store report");
        assert!(from_store.is_complete());
        assert_eq!(in_memory.report, from_store.report, "report text must be byte-identical");
        assert_eq!(in_memory.artifacts, from_store.artifacts, "artifacts must be byte-identical");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn resume_validates_and_keeps_existing_shards() {
        let d = tmpdir("resume");
        let mut cfg = PipelineConfig::new(tiny(43), d.join("out"));
        cfg.checkpoints = false;
        let store_dir = d.join("store");
        let (s1, r1) = run_store_generate(&cfg, &store_dir).expect("first generate");
        assert!(r1.iter().all(|r| r.status == StageStatus::Computed));

        cfg.resume = true;
        let (s2, r2) = run_store_generate(&cfg, &store_dir).expect("resumed generate");
        assert!(
            r2.iter().all(|r| r.status == StageStatus::Resumed),
            "complete store resumes every shard: {r2:?}"
        );
        assert_eq!(s2.stats.rows, 0, "resumed shards are not rewritten");
        assert_eq!(s1.shards, s2.shards);

        // Damage one shard file: only that shard regenerates.
        let victim = store_dir.join(unified_name(&s1.shards[1]));
        let bytes = std::fs::read(&victim).expect("read shard");
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate shard");
        let (_, r3) = run_store_generate(&cfg, &store_dir).expect("repair generate");
        let statuses: Vec<_> = r3.iter().map(|r| r.status.clone()).collect();
        assert_eq!(statuses[1], StageStatus::Computed, "damaged shard regenerates");
        assert!(
            statuses.iter().enumerate().all(|(i, s)| i == 1 || *s == StageStatus::Resumed),
            "undamaged shards resume: {r3:?}"
        );
        // And the repaired store still reports identically.
        let report = run_report_from_store(&store_dir, ExecPolicy::default(), &VfsHandle::real()).expect("report");
        assert!(report.is_complete());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn from_store_fails_cleanly_without_manifest() {
        let d = tmpdir("nomanifest");
        let err = run_report_from_store(&d, ExecPolicy::default(), &VfsHandle::real())
            .expect_err("empty dir has no manifest");
        assert!(err.to_string().contains("manifest"), "unhelpful error: {err}");
        let _ = std::fs::remove_dir_all(&d);
    }
}
