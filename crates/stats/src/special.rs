//! Special functions needed to turn test statistics into p-values.
//!
//! The paper stars a table cell when Welch's t-test yields `p < 0.05`
//! (Tables 1, 3 and 6) and reports p-values as small as `1e-122`. Computing
//! those requires the Student-t CDF, which we build the classical way:
//! Lanczos log-gamma → Lentz continued fraction for the regularized
//! incomplete beta → `t`-tail probability. `erf`/`normal_cdf` are included
//! for the samplers and for large-df shortcuts.

/// Lanczos approximation to `ln Γ(x)` for `x > 0`.
///
/// Uses the g = 7, n = 9 coefficient set (relative error < 1e-13 across the
/// positive reals), which is far more precision than the p-value thresholds
/// need.
///
/// # Panics
/// Panics if `x <= 0` (the reproduction never evaluates the reflected
/// branch, so we fail loudly instead of silently returning garbage).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients, g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz modified
/// continued fraction, with the symmetry transform for fast convergence.
///
/// # Panics
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_inc_beta requires a, b > 0 (a={a}, b={b})");
    assert!((0.0..=1.0).contains(&x), "reg_inc_beta requires x in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Continued fraction converges fast for x < (a + 1) / (a + b + 2);
    // otherwise use I_x(a,b) = 1 - I_{1-x}(b,a).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Continued-fraction kernel for the incomplete beta (Numerical Recipes
/// `betacf`, Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t-distribution with `df` degrees of freedom.
///
/// Welch's test produces fractional `df` (Welch–Satterthwaite), which the
/// incomplete-beta formulation handles natively.
///
/// # Panics
/// Panics if `df <= 0`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf requires df > 0, got {df}");
    if t.is_nan() {
        return f64::NAN;
    }
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * reg_inc_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Error function via the Numerical Recipes Chebyshev fit to `erfc`
/// (absolute error < 1.5e-7 everywhere — ample for the samplers and the
/// normal tail checks; p-values go through the incomplete beta instead).
pub fn erf(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let tau = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    let erfc = if x >= 0.0 { tau } else { 2.0 - tau };
    1.0 - erfc
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-10);
        close(ln_gamma(11.0), 3_628_800.0_f64.ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn inc_beta_boundaries() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            close(reg_inc_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn inc_beta_known_values() {
        // I_{0.5}(a, a) = 0.5 by symmetry.
        close(reg_inc_beta(3.7, 3.7, 0.5), 0.5, 1e-12);
        // scipy.special.betainc(2, 5, 0.3) = 0.579825...
        close(reg_inc_beta(2.0, 5.0, 0.3), 0.579_825_4, 1e-6);
    }

    #[test]
    fn t_cdf_symmetry_and_center() {
        close(student_t_cdf(0.0, 7.0), 0.5, 1e-12);
        let p = student_t_cdf(1.3, 4.5);
        let q = student_t_cdf(-1.3, 4.5);
        close(p + q, 1.0, 1e-12);
    }

    #[test]
    fn t_cdf_known_values() {
        // scipy.stats.t.cdf(2.0, 10) = 0.963306...
        close(student_t_cdf(2.0, 10.0), 0.963_306, 1e-5);
        // df = 1 is the Cauchy distribution: cdf(1) = 0.75.
        close(student_t_cdf(1.0, 1.0), 0.75, 1e-9);
        // Large df approaches the normal.
        close(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-4);
    }

    #[test]
    fn t_cdf_infinite_t() {
        assert_eq!(student_t_cdf(f64::INFINITY, 3.0), 1.0);
        assert_eq!(student_t_cdf(f64::NEG_INFINITY, 3.0), 0.0);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 2e-7);
        close(erf(1.0), 0.842_700_79, 2e-7);
        close(erf(-1.0), -0.842_700_79, 2e-7);
        close(erf(2.0), 0.995_322_27, 2e-7);
        close(erf(6.0), 1.0, 2e-7);
    }

    #[test]
    fn normal_cdf_quantiles() {
        close(normal_cdf(0.0), 0.5, 2e-7);
        close(normal_cdf(1.959_964), 0.975, 2e-7);
        close(normal_cdf(-1.644_854), 0.05, 2e-7);
    }
}
