//! The 27 regions of Ukraine as reported in the paper's Table 4.
//!
//! Each region carries the paper's own prewar and wartime measurements
//! (mean throughput, min RTT, loss rate, test count). These serve two
//! purposes in the reproduction: they *calibrate* the simulator's per-region
//! baselines, and they are the reference column in `EXPERIMENTS.md`'s
//! paper-vs-measured comparison. Region naming follows the paper's spelling
//! ("Kiev City", "L'viv", …).

use crate::coords::LatLon;
use serde::{Deserialize, Serialize};

/// Military-front classification from the paper's §2 narrative and Figure 1:
/// the Northern, Eastern and Southern fronts saw direct assault; the West
/// was largely spared; Crimea and Sevastopol were already occupied in 2014.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Front {
    /// Kyiv axis: assaulted from Belarus/Russia, regained by April 3.
    North,
    /// Kharkiv/Donbas axis: under continuous assault through the window.
    East,
    /// Kherson/Zaporizhzhia/Mykolaiv axis: partially occupied.
    South,
    /// Central oblasts: sporadic strikes, no ground assault.
    Center,
    /// Western oblasts: largely spared during the first 54 days.
    West,
    /// Crimea and Sevastopol: occupied since 2014, little change.
    Occupied,
}

/// One of the 27 administrative regions in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Oblast {
    KyivCity,
    Dnipropetrovsk,
    Lviv,
    Odessa,
    Kharkiv,
    Donetsk,
    Zaporizhzhya,
    Vinnytsya,
    Mykolayiv,
    Transcarpathia,
    Chernihiv,
    KyivOblast,
    Kherson,
    Cherkasy,
    Rivne,
    Poltava,
    IvanoFrankivsk,
    Ternopil,
    Kirovohrad,
    Luhansk,
    Volyn,
    Zhytomyr,
    Chernivtsi,
    Khmelnytskyy,
    Sumy,
    Crimea,
    Sevastopol,
}

/// The paper's reported per-period values for one region (Table 4 row half).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperCell {
    /// Mean download throughput in Mbps.
    pub tput_mbps: f64,
    /// Minimum RTT in milliseconds.
    pub min_rtt_ms: f64,
    /// Loss rate in percent (Table 4 prints e.g. "1.30%").
    pub loss_pct: f64,
    /// Number of NDT download tests in the 54-day period.
    pub tests: u32,
}

/// Static description of a region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OblastInfo {
    pub oblast: Oblast,
    /// The paper's spelling from Table 4.
    pub name: &'static str,
    /// Administrative center (or proxy centroid for Kyiv Oblast).
    pub center: LatLon,
    pub front: Front,
    /// Paper Table 4, prewar half (2022-01-01 .. 02-23).
    pub paper_prewar: PaperCell,
    /// Paper Table 4, wartime half (2022-02-24 .. 04-18).
    pub paper_wartime: PaperCell,
}

macro_rules! cell {
    ($tput:expr, $rtt:expr, $loss:expr, $n:expr) => {
        PaperCell { tput_mbps: $tput, min_rtt_ms: $rtt, loss_pct: $loss, tests: $n }
    };
}

macro_rules! region {
    ($ob:ident, $name:expr, $lat:expr, $lon:expr, $front:ident,
     pre($pt:expr, $pr:expr, $pl:expr, $pn:expr),
     war($wt:expr, $wr:expr, $wl:expr, $wn:expr)) => {
        OblastInfo {
            oblast: Oblast::$ob,
            name: $name,
            center: LatLon { lat: $lat, lon: $lon },
            front: Front::$front,
            paper_prewar: cell!($pt, $pr, $pl, $pn),
            paper_wartime: cell!($wt, $wr, $wl, $wn),
        }
    };
}

/// All 27 regions in the paper's Table 4 order.
pub static OBLASTS: [OblastInfo; 27] = [
    region!(KyivCity, "Kiev City", 50.4501, 30.5234, North,
        pre(61.71, 11.69, 1.30, 11216), war(50.61, 25.99, 2.93, 10023)),
    region!(Dnipropetrovsk, "Dnipropetrovs'k", 48.4647, 35.0462, Center,
        pre(35.18, 13.18, 1.82, 3024), war(30.14, 17.93, 2.96, 3483)),
    region!(Lviv, "L'viv", 49.8397, 24.0297, West,
        pre(34.70, 6.53, 1.62, 1881), war(37.16, 13.44, 3.27, 2964)),
    region!(Odessa, "Odessa", 46.4825, 30.7233, South,
        pre(40.31, 9.07, 1.99, 2210), war(39.43, 11.31, 2.41, 1969)),
    region!(Kharkiv, "Kharkiv", 49.9935, 36.2304, East,
        pre(42.72, 21.42, 2.22, 2102), war(42.51, 26.93, 3.41, 1692)),
    region!(Donetsk, "Donets'k", 48.0159, 37.8028, East,
        pre(26.87, 22.22, 2.09, 1749), war(20.78, 16.50, 4.02, 1318)),
    region!(Zaporizhzhya, "Zaporizhzhya", 47.8388, 35.1396, South,
        pre(24.71, 4.16, 2.00, 1046), war(19.87, 14.94, 12.09, 1552)),
    region!(Vinnytsya, "Vinnytsya", 49.2331, 28.4682, Center,
        pre(34.56, 6.73, 1.39, 894), war(32.82, 12.35, 2.42, 1293)),
    region!(Mykolayiv, "Mykolayiv", 46.9750, 31.9946, South,
        pre(55.30, 28.20, 1.50, 1031), war(49.50, 32.84, 2.31, 1127)),
    region!(Transcarpathia, "Transcarpathia", 48.6208, 22.2879, West,
        pre(27.36, 18.43, 4.77, 721), war(19.53, 20.96, 5.58, 1040)),
    region!(Chernihiv, "Chernihiv", 51.4982, 31.2893, North,
        pre(71.33, 14.20, 2.45, 1298), war(18.55, 9.90, 4.71, 366)),
    region!(KyivOblast, "Kiev", 49.7950, 30.1310, North,
        pre(32.76, 4.65, 1.35, 887), war(34.92, 17.40, 5.38, 728)),
    region!(Kherson, "Kherson", 46.6354, 32.6169, South,
        pre(24.59, 5.08, 2.07, 614), war(16.37, 18.94, 8.57, 986)),
    region!(Cherkasy, "Cherkasy", 49.4444, 32.0598, Center,
        pre(48.00, 3.94, 0.85, 570), war(46.33, 12.37, 2.68, 831)),
    region!(Rivne, "Rivne", 50.6199, 26.2516, West,
        pre(34.81, 3.30, 2.14, 612), war(28.21, 11.69, 3.69, 766)),
    region!(Poltava, "Poltava", 49.5883, 34.5514, Center,
        pre(31.12, 5.04, 1.47, 537), war(38.56, 17.60, 3.77, 824)),
    region!(IvanoFrankivsk, "Ivano-Frankivs'k", 48.9226, 24.7111, West,
        pre(22.16, 6.58, 2.19, 535), war(27.34, 15.28, 3.26, 758)),
    region!(Ternopil, "Ternopil'", 49.5535, 25.5948, West,
        pre(37.16, 11.50, 1.46, 531), war(43.95, 8.78, 2.46, 594)),
    region!(Kirovohrad, "Kirovohrad", 48.5079, 32.2623, Center,
        pre(18.64, 3.30, 1.87, 437), war(22.19, 11.22, 2.28, 642)),
    region!(Luhansk, "Luhans'k", 48.5740, 39.3078, East,
        pre(13.87, 10.30, 2.92, 581), war(14.66, 19.63, 5.88, 470)),
    region!(Volyn, "Volyn", 50.7472, 25.3254, West,
        pre(36.62, 4.49, 1.49, 414), war(26.84, 13.80, 2.67, 631)),
    region!(Zhytomyr, "Zhytomyr", 50.2547, 28.6587, North,
        pre(25.65, 8.25, 2.10, 459), war(28.38, 21.82, 5.31, 555)),
    region!(Chernivtsi, "Chernivtsi", 48.2921, 25.9358, West,
        pre(22.24, 4.71, 2.01, 462), war(38.00, 12.16, 2.22, 513)),
    region!(Khmelnytskyy, "Khmel'nyts'kyy", 49.4230, 26.9871, West,
        pre(21.67, 11.15, 2.06, 227), war(28.86, 14.49, 4.94, 688)),
    region!(Sumy, "Sumy", 50.9077, 34.7981, North,
        pre(22.61, 7.47, 1.87, 329), war(20.18, 20.83, 8.52, 552)),
    region!(Crimea, "Crimea", 44.9521, 34.1024, Occupied,
        pre(43.41, 65.76, 2.80, 348), war(34.60, 57.15, 4.45, 338)),
    region!(Sevastopol, "Sevastopol'", 44.6166, 33.5254, Occupied,
        pre(21.52, 47.53, 3.48, 92), war(29.80, 31.01, 4.08, 199)),
];

impl Oblast {
    /// All regions in Table 4 order.
    pub fn all() -> impl Iterator<Item = Oblast> {
        OBLASTS.iter().map(|o| o.oblast)
    }

    /// Static info for this region.
    pub fn info(&self) -> &'static OblastInfo {
        OBLASTS.iter().find(|o| o.oblast == *self).expect("every oblast has an entry")
    }

    /// The paper's Table 4 spelling.
    pub fn name(&self) -> &'static str {
        self.info().name
    }

    /// Front classification (§2 / Figure 1 narrative).
    pub fn front(&self) -> Front {
        self.info().front
    }

    /// Administrative-center coordinates.
    pub fn center(&self) -> LatLon {
        self.info().center
    }

    /// Prewar test count from Table 4 — used as the region's test-volume
    /// weight when spawning simulated clients.
    pub fn prewar_weight(&self) -> f64 {
        self.info().paper_prewar.tests as f64
    }

    /// Looks a region up by the paper's spelling.
    pub fn by_name(name: &str) -> Option<Oblast> {
        OBLASTS.iter().find(|o| o.name == name).map(|o| o.oblast)
    }
}

impl std::fmt::Display for Oblast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_seven_unique_regions() {
        assert_eq!(OBLASTS.len(), 27);
        let names: HashSet<_> = OBLASTS.iter().map(|o| o.name).collect();
        assert_eq!(names.len(), 27);
        let ids: HashSet<_> = OBLASTS.iter().map(|o| o.oblast).collect();
        assert_eq!(ids.len(), 27);
    }

    #[test]
    fn info_roundtrip() {
        for ob in Oblast::all() {
            assert_eq!(ob.info().oblast, ob);
            assert_eq!(Oblast::by_name(ob.name()), Some(ob));
        }
        assert_eq!(Oblast::by_name("Atlantis"), None);
    }

    #[test]
    fn paper_table4_totals() {
        // Table 4's prewar counts sum close to the national prewar count in
        // Table 1 (35,488); the delta is tests without region labels.
        let prewar: u32 = OBLASTS.iter().map(|o| o.paper_prewar.tests).sum();
        assert!((30_000..40_000).contains(&prewar), "prewar total = {prewar}");
        let wartime: u32 = OBLASTS.iter().map(|o| o.paper_wartime.tests).sum();
        assert!((30_000..42_000).contains(&wartime), "wartime total = {wartime}");
    }

    #[test]
    fn fronts_match_paper_narrative() {
        assert_eq!(Oblast::KyivCity.front(), Front::North);
        assert_eq!(Oblast::Kharkiv.front(), Front::East);
        assert_eq!(Oblast::Donetsk.front(), Front::East);
        assert_eq!(Oblast::Kherson.front(), Front::South);
        assert_eq!(Oblast::Lviv.front(), Front::West);
        assert_eq!(Oblast::Crimea.front(), Front::Occupied);
    }

    #[test]
    fn coordinates_are_inside_ukraine_bounding_box() {
        for o in &OBLASTS {
            assert!((44.0..53.0).contains(&o.center.lat), "{} lat {}", o.name, o.center.lat);
            assert!((22.0..40.5).contains(&o.center.lon), "{} lon {}", o.name, o.center.lon);
        }
    }

    #[test]
    fn key_city_regions_degraded_in_paper_data() {
        // Sanity on the transcription: the paper's own numbers show loss
        // rising in Kyiv City and Kharkiv.
        let kyiv = Oblast::KyivCity.info();
        assert!(kyiv.paper_wartime.loss_pct > kyiv.paper_prewar.loss_pct);
        let kharkiv = Oblast::Kharkiv.info();
        assert!(kharkiv.paper_wartime.loss_pct > kharkiv.paper_prewar.loss_pct);
    }
}
