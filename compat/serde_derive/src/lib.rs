//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The workspace derives serde traits on its result structs so that a real
//! serde can be slotted in when the build environment has network access;
//! until then the derives only need to *accept* the syntax.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
