//! Figure 9 (Appendix D): performance changes as a function of the change
//! in the number of unique paths per connection.
//!
//! "As the number of paths a connection uses increases, we see
//! corresponding, statistically significant decreases in throughput and
//! increases in loss rates … we only consider connections that had at least
//! ten tests both prewar and during wartime."

use crate::coverage::Coverage;
use crate::dataset::StudyData;
use crate::error::AnalysisError;
use crate::render::csv;
use ndt_conflict::Period;
use ndt_stats::{pearson, welch_t_test, WelchTTest};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Per-connection measurements across the two 2022 periods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnDelta {
    /// Wartime unique paths − prewar unique paths.
    pub d_paths: i64,
    /// Relative throughput change.
    pub d_tput: f64,
    /// Absolute loss-rate change.
    pub d_loss: f64,
}

/// One bucket of the figure (connections grouped by Δpaths).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathBucket {
    pub d_paths: i64,
    pub connections: usize,
    pub mean_d_tput: f64,
    pub mean_d_loss: f64,
}

/// Figure 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathPerformance {
    pub connections: Vec<ConnDelta>,
    pub buckets: Vec<PathBucket>,
    /// Pearson correlation of Δpaths vs Δtput (expected negative, mild).
    pub corr_tput: f64,
    /// Pearson correlation of Δpaths vs Δloss (expected positive, mild).
    pub corr_loss: f64,
    /// Welch's test between the Δtput of stable (Δpaths ≤ 0) and churned
    /// (Δpaths ≥ 2) connections.
    pub stable_vs_churned_tput: WelchTTest,
    /// Degradation accounting: thin Δpaths buckets are daggered.
    pub coverage: Coverage,
}

#[derive(Default)]
struct ConnAgg {
    tests: usize,
    paths: HashSet<u64>,
    tput_sum: f64,
    loss_sum: f64,
}

fn aggregate(data: &StudyData, period: Period) -> HashMap<(u32, u32), ConnAgg> {
    let mut map: HashMap<(u32, u32), ConnAgg> = HashMap::new();
    for r in data.traces_in(period) {
        let e = map.entry((r.client_ip.0, r.server_ip.0)).or_default();
        e.tests += 1;
        e.paths.insert(r.path_fingerprint);
        e.tput_sum += r.mean_tput_mbps;
        e.loss_sum += r.loss_rate;
    }
    map
}

/// Computes the figure. `min_tests` is 10 in the paper.
pub fn compute(data: &StudyData, min_tests: usize) -> Result<PathPerformance, AnalysisError> {
    let mut cov = Coverage::new();
    let pre = aggregate(data, Period::Prewar2022);
    let war = aggregate(data, Period::Wartime2022);
    let mut connections = Vec::new();
    // Walk connections in identity order: the float accumulations below
    // (means, correlations) must not inherit HashMap iteration order.
    let mut conn_keys: Vec<(u32, u32)> = pre.keys().copied().collect();
    conn_keys.sort_unstable();
    for conn in conn_keys {
        let p = &pre[&conn];
        let Some(w) = war.get(&conn) else { continue };
        if p.tests < min_tests || w.tests < min_tests {
            continue;
        }
        let p_tput = p.tput_sum / p.tests as f64;
        let w_tput = w.tput_sum / w.tests as f64;
        connections.push(ConnDelta {
            d_paths: w.paths.len() as i64 - p.paths.len() as i64,
            d_tput: (w_tput - p_tput) / p_tput,
            d_loss: w.loss_sum / w.tests as f64 - p.loss_sum / p.tests as f64,
        });
    }
    // Buckets by Δpaths (clamped to a readable range).
    let mut grouped: BTreeMap<i64, Vec<&ConnDelta>> = BTreeMap::new();
    for c in &connections {
        grouped.entry(c.d_paths.clamp(-3, 5)).or_default().push(c);
    }
    let buckets: Vec<PathBucket> = grouped
        .into_iter()
        .map(|(d_paths, v)| PathBucket {
            d_paths,
            connections: v.len(),
            mean_d_tput: v.iter().map(|c| c.d_tput).sum::<f64>() / v.len() as f64,
            mean_d_loss: v.iter().map(|c| c.d_loss).sum::<f64>() / v.len() as f64,
        })
        .collect();
    cov.see(connections.len());
    for b in &buckets {
        cov.note_sample(format!("Δpaths {:+}", b.d_paths), b.connections);
    }
    let xs: Vec<f64> = connections.iter().map(|c| c.d_paths as f64).collect();
    let tputs: Vec<f64> = connections.iter().map(|c| c.d_tput).collect();
    let losses: Vec<f64> = connections.iter().map(|c| c.d_loss).collect();
    let stable: Vec<f64> =
        connections.iter().filter(|c| c.d_paths <= 0).map(|c| c.d_tput).collect();
    let churned: Vec<f64> =
        connections.iter().filter(|c| c.d_paths >= 2).map(|c| c.d_tput).collect();
    Ok(PathPerformance {
        corr_tput: pearson(&xs, &tputs),
        corr_loss: pearson(&xs, &losses),
        stable_vs_churned_tput: welch_t_test(&stable, &churned),
        connections,
        buckets,
        coverage: cov,
    })
}

impl PathPerformance {
    /// CSV of the bucketed panel.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .buckets
            .iter()
            .map(|b| {
                vec![
                    b.d_paths.to_string(),
                    b.connections.to_string(),
                    format!("{:.4}", b.mean_d_tput),
                    format!("{:.5}", b.mean_d_loss),
                ]
            })
            .collect();
        csv(&["d_paths", "connections", "mean_d_tput", "mean_d_loss"], &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_support::shared_medium;
    use std::sync::OnceLock;

    fn fig() -> &'static PathPerformance {
        static F: OnceLock<PathPerformance> = OnceLock::new();
        F.get_or_init(|| compute(shared_medium(), 10).expect("clean corpus computes"))
    }

    #[test]
    fn persistent_connections_exist() {
        let f = fig();
        assert!(f.connections.len() > 100, "only {} persistent connections", f.connections.len());
        assert!(f.buckets.len() >= 3);
    }

    #[test]
    fn more_paths_means_worse_performance() {
        let f = fig();
        // The paper's "mild correlation": negative for throughput, positive
        // for loss.
        assert!(f.corr_tput < 0.0, "corr(Δpaths, Δtput) = {}", f.corr_tput);
        assert!(f.corr_loss > 0.0, "corr(Δpaths, Δloss) = {}", f.corr_loss);
        // Mild, not dominant — matching the paper's takeaway that most
        // degradation lives at the edge.
        assert!(f.corr_tput.abs() < 0.9 && f.corr_loss.abs() < 0.9);
    }

    #[test]
    fn churned_connections_suffer_more_loss() {
        // The loss panel of Figure 9 is the strong coupling (our diag runs
        // show it monotone across buckets); throughput's bucket contrast is
        // noisier, so it is asserted through the correlation sign instead
        // (`more_paths_means_worse_performance`).
        let f = fig();
        let stable: Vec<&ConnDelta> = f.connections.iter().filter(|c| c.d_paths <= 0).collect();
        let churned: Vec<&ConnDelta> = f.connections.iter().filter(|c| c.d_paths >= 2).collect();
        assert!(stable.len() >= 10 && churned.len() >= 10, "degenerate buckets");
        let m = |v: &[&ConnDelta]| v.iter().map(|c| c.d_loss).sum::<f64>() / v.len() as f64;
        assert!(
            m(&churned) > m(&stable),
            "churned loss {} vs stable loss {}",
            m(&churned),
            m(&stable)
        );
    }

    #[test]
    fn csv_is_ordered_by_d_paths() {
        let c = fig().to_csv();
        let ds: Vec<i64> = c
            .lines()
            .skip(1)
            .map(|l| l.split(',').next().unwrap().parse().unwrap())
            .collect();
        assert!(ds.windows(2).all(|w| w[0] < w[1]));
    }
}
