//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits (blanket-implemented,
//! so generic bounds always hold) and re-exports the no-op derive macros
//! under the same names, mirroring real serde's `derive` feature. Swapping in
//! the real crate is a one-line Cargo.toml change; no source edits needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
