//! Binary serialization for generated datasets.
//!
//! The crash-safe runner checkpoints corpus shards to disk and reloads
//! them on resume; a resumed run must be **bit-for-bit** identical to an
//! uninterrupted one, so this codec round-trips every row exactly:
//! floats travel as their IEEE-754 bit patterns (`f64::to_le_bytes`),
//! never through text formatting. The format is little-endian,
//! length-prefixed, and versioned; decoding is panic-free — torn or
//! corrupt input surfaces as a [`CodecError`], which the runner treats as
//! "checkpoint invalid, recompute".
//!
//! The [`wire`] primitives are shared with the runner's own checkpoint
//! container so the workspace has exactly one binary-encoding idiom.

use crate::schema::{Dataset, Scamper1Row, UnifiedDownloadRow};
use ndt_geo::{CityId, Oblast};
use ndt_topology::{Asn, Ipv4Addr};

/// Magic prefix of a serialized [`Dataset`] (`NDT corpus, v1`).
pub const DATASET_MAGIC: [u8; 4] = *b"NDC1";

/// Little-endian wire primitives, shared with the runner's checkpoint
/// container and the columnar store. The implementation lives in
/// `ndt-store` (the workspace's one binary-encoding module); this
/// re-export keeps the historical `ndt_mlab::codec::wire` paths working.
pub use ndt_store::wire;

/// Why a byte buffer failed to decode (re-exported from `ndt-store`).
pub use ndt_store::wire::CodecError;

use wire::Reader;

const VERSION: u16 = 1;

/// `Oblast → u8` index in the stable Table 4 order ([`Oblast::all`]).
pub(crate) fn oblast_index(o: Oblast) -> u8 {
    Oblast::all().position(|x| x == o).unwrap_or(0) as u8
}

pub(crate) fn oblast_from_index(i: u8) -> Result<Oblast, CodecError> {
    Oblast::all()
        .nth(i as usize)
        .ok_or(CodecError::InvalidValue { what: "oblast index", value: i as u64 })
}

fn put_unified(out: &mut Vec<u8>, r: &UnifiedDownloadRow) {
    wire::put_i64(out, r.day);
    wire::put_u32(out, r.client_ip.0);
    wire::put_u32(out, r.server_ip.0);
    wire::put_u32(out, r.client_asn.0);
    match r.oblast {
        Some(o) => {
            out.push(1);
            out.push(oblast_index(o));
        }
        None => out.extend_from_slice(&[0, 0]),
    }
    match r.city {
        Some(c) => {
            out.push(1);
            wire::put_u16(out, c.0);
        }
        None => out.extend_from_slice(&[0, 0, 0]),
    }
    wire::put_f64(out, r.mean_tput_mbps);
    wire::put_f64(out, r.min_rtt_ms);
    wire::put_f64(out, r.loss_rate);
}

fn read_unified(r: &mut Reader<'_>) -> Result<UnifiedDownloadRow, CodecError> {
    let day = r.i64("unified.day")?;
    let client_ip = Ipv4Addr(r.u32("unified.client_ip")?);
    let server_ip = Ipv4Addr(r.u32("unified.server_ip")?);
    let client_asn = Asn(r.u32("unified.client_asn")?);
    let oblast = match r.u8("unified.oblast_tag")? {
        0 => {
            r.u8("unified.oblast")?;
            None
        }
        1 => Some(oblast_from_index(r.u8("unified.oblast")?)?),
        t => return Err(CodecError::InvalidValue { what: "oblast tag", value: t as u64 }),
    };
    let city = match r.u8("unified.city_tag")? {
        0 => {
            r.u16("unified.city")?;
            None
        }
        1 => Some(CityId(r.u16("unified.city")?)),
        t => return Err(CodecError::InvalidValue { what: "city tag", value: t as u64 }),
    };
    Ok(UnifiedDownloadRow {
        day,
        client_ip,
        server_ip,
        client_asn,
        oblast,
        city,
        mean_tput_mbps: r.f64("unified.tput")?,
        min_rtt_ms: r.f64("unified.min_rtt")?,
        loss_rate: r.f64("unified.loss")?,
    })
}

fn put_trace(out: &mut Vec<u8>, r: &Scamper1Row) {
    wire::put_i64(out, r.day);
    wire::put_u32(out, r.client_ip.0);
    wire::put_u32(out, r.server_ip.0);
    wire::put_u64(out, r.path_fingerprint);
    wire::put_u64(out, r.router_fingerprint);
    wire::put_u64(out, r.resolved_fingerprint);
    wire::put_u16(out, r.as_path.len() as u16);
    for a in &r.as_path {
        wire::put_u32(out, a.0);
    }
    match r.border {
        Some((a, b)) => {
            out.push(1);
            wire::put_u32(out, a.0);
            wire::put_u32(out, b.0);
        }
        None => {
            out.push(0);
            wire::put_u32(out, 0);
            wire::put_u32(out, 0);
        }
    }
    wire::put_f64(out, r.mean_tput_mbps);
    wire::put_f64(out, r.min_rtt_ms);
    wire::put_f64(out, r.loss_rate);
}

fn read_trace(r: &mut Reader<'_>) -> Result<Scamper1Row, CodecError> {
    let day = r.i64("trace.day")?;
    let client_ip = Ipv4Addr(r.u32("trace.client_ip")?);
    let server_ip = Ipv4Addr(r.u32("trace.server_ip")?);
    let path_fingerprint = r.u64("trace.path_fp")?;
    let router_fingerprint = r.u64("trace.router_fp")?;
    let resolved_fingerprint = r.u64("trace.resolved_fp")?;
    let n = r.u16("trace.as_path_len")? as usize;
    let mut as_path = Vec::with_capacity(n);
    for _ in 0..n {
        as_path.push(Asn(r.u32("trace.as_path")?));
    }
    let border = match r.u8("trace.border_tag")? {
        0 => {
            r.u32("trace.border_a")?;
            r.u32("trace.border_b")?;
            None
        }
        1 => Some((Asn(r.u32("trace.border_a")?), Asn(r.u32("trace.border_b")?))),
        t => return Err(CodecError::InvalidValue { what: "border tag", value: t as u64 }),
    };
    Ok(Scamper1Row {
        day,
        client_ip,
        server_ip,
        path_fingerprint,
        router_fingerprint,
        resolved_fingerprint,
        as_path,
        border,
        mean_tput_mbps: r.f64("trace.tput")?,
        min_rtt_ms: r.f64("trace.min_rtt")?,
        loss_rate: r.f64("trace.loss")?,
    })
}

impl Dataset {
    /// Serializes the dataset into the versioned binary wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Rough per-row sizes keep reallocation off the hot path.
        let mut out = Vec::with_capacity(16 + self.ndt.len() * 46 + self.traces.len() * 80);
        out.extend_from_slice(&DATASET_MAGIC);
        wire::put_u16(&mut out, VERSION);
        wire::put_u64(&mut out, self.ndt.len() as u64);
        wire::put_u64(&mut out, self.traces.len() as u64);
        for r in &self.ndt {
            put_unified(&mut out, r);
        }
        for r in &self.traces {
            put_trace(&mut out, r);
        }
        out
    }

    /// Decodes a dataset serialized by [`Dataset::to_bytes`]. Exact
    /// inverse: `Dataset::from_bytes(&d.to_bytes()) == Ok(d)` for every
    /// dataset, including NaN metric cells (bit-pattern float transport).
    pub fn from_bytes(buf: &[u8]) -> Result<Dataset, CodecError> {
        let mut r = Reader::new(buf);
        if r.bytes(4, "magic")? != DATASET_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let v = r.u16("version")?;
        if v != VERSION {
            return Err(CodecError::UnsupportedVersion(v));
        }
        let n_ndt = r.u64("ndt count")?;
        let n_traces = r.u64("trace count")?;
        // A row is ≥ 30 bytes; reject counts the buffer cannot possibly
        // hold before allocating for them.
        let implausible = |n: u64| n > (buf.len() as u64) / 30 + 1;
        if implausible(n_ndt) {
            return Err(CodecError::InvalidValue { what: "ndt count", value: n_ndt });
        }
        if implausible(n_traces) {
            return Err(CodecError::InvalidValue { what: "trace count", value: n_traces });
        }
        let mut ds = Dataset {
            ndt: Vec::with_capacity(n_ndt as usize),
            traces: Vec::with_capacity(n_traces as usize),
        };
        for _ in 0..n_ndt {
            ds.ndt.push(read_unified(&mut r)?);
        }
        for _ in 0..n_traces {
            ds.traces.push(read_trace(&mut r)?);
        }
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulator};

    fn sample() -> Dataset {
        Simulator::new(SimConfig { scale: 0.01, seed: 11, ..SimConfig::default() }).run()
    }

    #[test]
    fn roundtrips_a_generated_dataset_exactly() {
        let ds = sample();
        assert!(ds.ndt.len() > 100 && ds.traces.len() > 1000, "sample too small to be meaningful");
        let bytes = ds.to_bytes();
        let back = Dataset::from_bytes(&bytes).expect("decodes");
        assert_eq!(ds, back);
        // And the encoding itself is deterministic.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn roundtrips_nan_and_none_cells() {
        let mut ds = sample();
        // Mirror the fault layer's corruptions: NaN metrics, missing geo.
        ds.ndt[0].mean_tput_mbps = f64::NAN;
        ds.ndt[0].oblast = None;
        ds.ndt[0].city = None;
        ds.ndt[1].min_rtt_ms = f64::NEG_INFINITY;
        ds.traces[0].border = None;
        ds.traces[1].as_path.clear();
        let back = Dataset::from_bytes(&ds.to_bytes()).expect("decodes");
        assert!(back.ndt[0].mean_tput_mbps.is_nan());
        assert_eq!(back.ndt[0].mean_tput_mbps.to_bits(), ds.ndt[0].mean_tput_mbps.to_bits());
        // NaN cells defeat `PartialEq`; byte-level equality is the real
        // round-trip claim anyway.
        assert_eq!(ds.to_bytes(), back.to_bytes());
    }

    #[test]
    fn rejects_corrupt_input_without_panicking() {
        let ds = sample();
        let bytes = ds.to_bytes();
        assert_eq!(Dataset::from_bytes(b""), Err(CodecError::Truncated("magic")));
        assert_eq!(Dataset::from_bytes(b"WAT1aaaaaaaaaaaaaaaaaa"), Err(CodecError::BadMagic));
        // Truncation anywhere must error, never panic.
        for cut in [5, 12, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(Dataset::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} decoded");
        }
        // Trailing garbage is detected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(Dataset::from_bytes(&padded), Err(CodecError::TrailingBytes(1)));
        // A flipped declared count is caught by the plausibility bound.
        let mut huge = bytes;
        huge[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Dataset::from_bytes(&huge),
            Err(CodecError::InvalidValue { what: "ndt count", .. })
        ));
    }

    #[test]
    fn oblast_indices_are_stable_and_total() {
        for (i, o) in ndt_geo::Oblast::all().enumerate() {
            assert_eq!(oblast_index(o), i as u8);
            assert_eq!(oblast_from_index(i as u8), Ok(o));
        }
        assert!(oblast_from_index(200).is_err());
    }
}
