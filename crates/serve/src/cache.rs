//! Single-flight result cache.
//!
//! Responses are immutable for the lifetime of a server (the store is
//! loaded once), so the cache is insert-only for successes: a `Ready`
//! entry never changes and every later hit returns the same `Arc<str>` —
//! which is what makes cached responses byte-identical to cold ones by
//! construction.
//!
//! The single-flight half deduplicates *concurrent* identical requests:
//! the first requester takes a [`Lease`] and executes; the rest wait on a
//! condvar for the leader's outcome instead of queuing duplicate work. A
//! leader that fails parks a `Failed` entry so current waiters see the
//! error, and the *next* requester replaces it with a fresh lease —
//! failures are never cached past the waiters they belong to.
//!
//! A dropped lease (response channel gone, worker thread died) fails the
//! entry rather than leaving waiters parked forever: the `Drop` impl is
//! the last line of defence, not a code path anything aims for.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::server::ServeError;

#[derive(Debug, Clone)]
enum Entry {
    /// A leader holds the lease and is computing.
    InFlight,
    /// The response body; immutable once inserted.
    Ready(Arc<str>),
    /// The leader failed; waiters take the error, the next lookup retries.
    Failed(ServeError),
}

#[derive(Debug, Default)]
struct State {
    map: Mutex<HashMap<String, Entry>>,
    cv: Condvar,
}

/// What a cache lookup found; see [`Cache::lookup`].
#[derive(Debug)]
pub enum Lookup {
    /// Cached response — return it, nothing to execute.
    Hit(Arc<str>),
    /// This requester is the leader: execute and settle the lease.
    Lease(Lease),
    /// Another requester is already computing this key; call
    /// [`Cache::wait`].
    Wait,
}

/// The leader's obligation to settle a cache key, one way or the other.
#[derive(Debug)]
pub struct Lease {
    state: Arc<State>,
    key: String,
    settled: bool,
}

impl Lease {
    /// Publishes the response and wakes every waiter.
    pub fn fulfill(mut self, value: Arc<str>) {
        self.settled = true;
        self.state.settle(&self.key, Entry::Ready(value));
    }

    /// Fails the key for current waiters and wakes them; the next
    /// requester will retry as a fresh leader.
    pub fn fail(mut self, err: ServeError) {
        self.settled = true;
        self.state.settle(&self.key, Entry::Failed(err));
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if !self.settled {
            self.state.settle(
                &self.key,
                Entry::Failed(ServeError::Failed("request abandoned before completion".into())),
            );
        }
    }
}

impl State {
    fn settle(&self, key: &str, entry: Entry) {
        let mut g = self.map.lock().unwrap_or_else(|p| p.into_inner());
        g.insert(key.to_string(), entry);
        self.cv.notify_all();
    }
}

/// Keyed single-flight response cache; cheap to clone, shared by value.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    state: Arc<State>,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`: a hit returns the cached response, a vacant (or
    /// previously failed) key makes this caller the leader, an in-flight
    /// key directs the caller to [`Cache::wait`].
    pub fn lookup(&self, key: &str) -> Lookup {
        let mut g = self.state.map.lock().unwrap_or_else(|p| p.into_inner());
        match g.get(key) {
            Some(Entry::Ready(v)) => Lookup::Hit(Arc::clone(v)),
            Some(Entry::InFlight) => Lookup::Wait,
            Some(Entry::Failed(_)) | None => {
                g.insert(key.to_string(), Entry::InFlight);
                Lookup::Lease(Lease {
                    state: Arc::clone(&self.state),
                    key: key.to_string(),
                    settled: false,
                })
            }
        }
    }

    /// Blocks until the in-flight leader for `key` settles, bounded by
    /// `deadline`. Returns the leader's response or error; its own
    /// expiry is [`ServeError::DeadlineExceeded`] (the leader keeps
    /// computing — a waiter's deadline is its own).
    pub fn wait(&self, key: &str, deadline: Duration) -> Result<Arc<str>, ServeError> {
        let started = Instant::now();
        let mut g = self.state.map.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match g.get(key) {
                Some(Entry::Ready(v)) => return Ok(Arc::clone(v)),
                Some(Entry::Failed(e)) => return Err(e.clone()),
                Some(Entry::InFlight) => {}
                // The leader's lease vanished without settling — only
                // possible across a reset; treat as a failure.
                None => return Err(ServeError::Failed("cache entry vanished".into())),
            }
            let remaining = deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                return Err(ServeError::DeadlineExceeded);
            }
            g = self
                .state
                .cv
                .wait_timeout(g, remaining)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn hit_after_fulfill_returns_the_same_allocation() {
        let c = Cache::new();
        let Lookup::Lease(lease) = c.lookup("k") else { panic!("vacant key leases") };
        let body: Arc<str> = Arc::from("response bytes");
        lease.fulfill(Arc::clone(&body));
        match c.lookup("k") {
            Lookup::Hit(v) => {
                assert!(Arc::ptr_eq(&v, &body), "hit must be the identical allocation")
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_lookups_single_flight() {
        let c = Cache::new();
        let Lookup::Lease(lease) = c.lookup("k") else { panic!("leader leases") };
        // Everyone after the leader is told to wait, not to lease.
        assert!(matches!(c.lookup("k"), Lookup::Wait));
        assert!(matches!(c.lookup("k"), Lookup::Wait));

        let waiter = {
            let c = c.clone();
            thread::spawn(move || c.wait("k", Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        lease.fulfill(Arc::from("v"));
        let got = waiter.join().expect("no panic").expect("leader fulfilled");
        assert_eq!(&*got, "v");
    }

    #[test]
    fn failed_leader_wakes_waiters_with_the_error_and_next_lookup_retries() {
        let c = Cache::new();
        let Lookup::Lease(lease) = c.lookup("k") else { panic!("leader leases") };
        let waiter = {
            let c = c.clone();
            thread::spawn(move || c.wait("k", Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        lease.fail(ServeError::Panicked("boom".into()));
        let err = waiter.join().expect("no panic").expect_err("leader failed");
        assert!(matches!(err, ServeError::Panicked(_)), "{err:?}");
        // The failure is not cached: the next requester becomes a leader.
        assert!(matches!(c.lookup("k"), Lookup::Lease(_)));
    }

    #[test]
    fn waiter_deadline_is_independent_of_the_leader() {
        let c = Cache::new();
        let Lookup::Lease(_lease) = c.lookup("k") else { panic!("leader leases") };
        let err = c.wait("k", Duration::from_millis(30)).expect_err("times out");
        assert!(matches!(err, ServeError::DeadlineExceeded), "{err:?}");
    }

    #[test]
    fn dropped_lease_fails_the_key_instead_of_parking_waiters() {
        let c = Cache::new();
        let lookup = c.lookup("k");
        drop(lookup);
        let err = c.wait("k", Duration::from_secs(5)).expect_err("abandoned");
        assert!(matches!(err, ServeError::Failed(_)), "{err:?}");
    }
}
