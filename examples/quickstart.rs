//! Quickstart: generate a reduced corpus and reproduce the paper's headline
//! city table (Table 1).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ukraine_ndt::prelude::*;

fn main() {
    // A fifth of the full corpus generates in a few seconds and is plenty
    // for the city-level significance tests.
    let config = SimConfig { scale: 0.2, seed: 42, ..SimConfig::default() };
    println!("Generating simulated M-Lab corpus (scale {}) ...", config.scale);
    let data = StudyData::generate(config);
    println!(
        "  {} unified_download rows, {} scamper rows\n",
        data.unified_len(),
        data.raw.traces.len()
    );

    println!("Table 1 — city-level metrics, prewar vs wartime (Welch's t-test):\n");
    let table1 = ukraine_ndt::analysis::table1_cities::compute(&data).expect("clean corpus computes");
    println!("{}", table1.render());

    let kyiv = table1.row("Kyiv").expect("Kyiv row");
    println!(
        "Kyiv: minRTT {:.1} → {:.1} ms ({}), loss {:.2}% → {:.2}% ({})",
        kyiv.min_rtt_prewar,
        kyiv.min_rtt_wartime,
        kyiv.rtt_test.starred(),
        kyiv.loss_prewar * 100.0,
        kyiv.loss_wartime * 100.0,
        kyiv.loss_test.starred(),
    );
    let lviv = table1.row("Lviv").expect("Lviv row");
    println!(
        "Lviv: throughput change is {} (p = {:.2}) — the west is spared, as in the paper.",
        if lviv.tput_test.significant() { "significant" } else { "NOT significant" },
        lviv.tput_test.p,
    );
}
