//! Descriptive statistics: streaming summaries, medians and quantiles.
//!
//! The paper reports per-period means, medians and standard deviations for
//! each NDT metric (Tables 1, 4 and 5). [`Summary`] accumulates those in a
//! single pass using Welford's online algorithm, which stays numerically
//! stable for the small-variance loss-rate columns.

use serde::{Deserialize, Serialize};

/// One-pass moment accumulator (Welford's algorithm).
///
/// Tracks count, mean, unbiased sample variance, minimum and maximum.
/// Merging two summaries is supported so datasets can be aggregated per-day
/// and then combined per-period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Builds a summary from a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation. Non-finite values are ignored, mirroring how the
    /// paper's pipeline drops malformed NDT rows rather than poisoning a
    /// period aggregate.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n - 1` denominator); `NaN` for `n < 2`.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Unbiased sample standard deviation; `NaN` for `n < 2`.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// Mean of a slice; `NaN` when empty.
pub fn mean(values: &[f64]) -> f64 {
    Summary::of(values).mean()
}

/// Unbiased sample standard deviation of a slice; `NaN` for fewer than two
/// values.
pub fn std_dev(values: &[f64]) -> f64 {
    Summary::of(values).std_dev()
}

/// Median via [`quantile`] at `q = 0.5`.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Linearly interpolated quantile (type-7, the default used by R and by
/// pandas — and therefore by the paper's analysis scripts).
///
/// Non-finite inputs are dropped first. Returns `NaN` on an empty input.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile fraction must be in [0, 1], got {q}");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(f64::total_cmp);
    let h = (v.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (h - lo as f64) * (v[hi] - v[lo])
    }
}

/// Relative change `(after - before) / before`, the Δ% quantity reported all
/// over Table 3 and Figure 3. Returns `NaN` if `before` is zero or either
/// input is non-finite.
pub fn relative_change(before: f64, after: f64) -> f64 {
    if before == 0.0 || !before.is_finite() || !after.is_finite() {
        f64::NAN
    } else {
        (after - before) / before
    }
}

/// Multiplicative ratio `after / before`, the `×` quantity in Table 3's loss
/// column. Returns `NaN` if `before` is zero or either input is non-finite.
pub fn ratio(before: f64, after: f64) -> f64 {
    if before == 0.0 || !before.is_finite() || !after.is_finite() {
        f64::NAN
    } else {
        after / before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Two-pass unbiased variance: sum((x-5)^2)/7 = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.min().is_nan());
    }

    #[test]
    fn single_value_has_nan_variance() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert!(s.variance().is_nan());
    }

    #[test]
    fn non_finite_values_are_skipped() {
        let s = Summary::of(&[1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_combined_pass() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0];
        let mut left = Summary::of(&a);
        let right = Summary::of(&b);
        left.merge(&right);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let whole = Summary::of(&all);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_endpoints_and_interior() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 40.0);
        // Type-7: h = 3*0.25 = 0.75 → 10 + 0.75*10 = 17.5.
        assert!((quantile(&v, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_empty_is_nan() {
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "quantile fraction")]
    fn quantile_out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn relative_change_and_ratio() {
        assert!((relative_change(50.0, 75.0) - 0.5).abs() < 1e-12);
        assert!((relative_change(50.0, 25.0) + 0.5).abs() < 1e-12);
        assert!(relative_change(0.0, 1.0).is_nan());
        assert!((ratio(2.0, 5.0) - 2.5).abs() < 1e-12);
        assert!(ratio(0.0, 5.0).is_nan());
    }
}
