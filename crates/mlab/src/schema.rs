//! Published row shapes, mirroring the two BigQuery tables the paper reads.

use ndt_bq::{ColType, Table, Value};
use ndt_geo::{CityId, Oblast};
use ndt_topology::{Asn, Ipv4Addr};
use serde::{Deserialize, Serialize};

/// One row of the `ndt.unified_download`-shaped table (§3: "Bigquery table
/// ndt.unified_download"): a completed NDT download with its TCP_INFO
/// metrics and MaxMind geo annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnifiedDownloadRow {
    /// Day index (days since 2021-01-01).
    pub day: i64,
    /// Client address.
    pub client_ip: Ipv4Addr,
    /// Server address (determines the connection pair).
    pub server_ip: Ipv4Addr,
    /// Client access AS (resolved from the client address).
    pub client_asn: Asn,
    /// MaxMind-reported region, if located.
    pub oblast: Option<Oblast>,
    /// MaxMind-reported city, if labeled.
    pub city: Option<CityId>,
    /// Mean download throughput, Mbps.
    pub mean_tput_mbps: f64,
    /// Minimum RTT, milliseconds.
    pub min_rtt_ms: f64,
    /// Loss rate (fraction).
    pub loss_rate: f64,
}

/// One row of the `ndt.scamper1`-shaped table: the sidecar traceroute for a
/// test, pre-joined (as the paper does) with the test's own metrics.
///
/// Full hop lists live in `ndt-topology`'s `Traceroute`; this row keeps the
/// derived quantities §5 consumes: the IP-path fingerprint (distinct-path
/// counting), the AS sequence (per-AS attribution) and the border crossing
/// (Figure 5/6 axes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scamper1Row {
    pub day: i64,
    pub client_ip: Ipv4Addr,
    pub server_ip: Ipv4Addr,
    /// FNV fingerprint of the interface-level (IP-level) path — what §5.1
    /// counts.
    pub path_fingerprint: u64,
    /// FNV fingerprint of the router-level path (ground truth for the
    /// alias-resolution extension).
    pub router_fingerprint: u64,
    /// FNV fingerprint of the path as an imperfect Ally-style alias
    /// resolver sees it (interfaces mapped through recovered clusters) —
    /// between the IP-level and router-level granularities.
    pub resolved_fingerprint: u64,
    /// AS-level sequence server→client (deduplicated).
    pub as_path: Vec<Asn>,
    /// First foreign→Ukrainian link on the path.
    pub border: Option<(Asn, Asn)>,
    /// Metrics of the accompanying NDT test.
    pub mean_tput_mbps: f64,
    pub min_rtt_ms: f64,
    pub loss_rate: f64,
}

/// A generated dataset: both "BigQuery tables".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// §4's table: downsampled, validated download rows.
    pub ndt: Vec<UnifiedDownloadRow>,
    /// §5's table: one traceroute row per raw test.
    pub traces: Vec<Scamper1Row>,
}

/// An empty `ndt.unified_download`-shaped `ndt-bq` table. Streaming
/// ingestors (the columnar store's report path) start from this and feed
/// rows through [`push_unified_row`] so their table is cell-for-cell
/// identical to [`Dataset::unified_table`].
pub fn empty_unified_table() -> Table {
    let mut t = Table::new(
        "ndt.unified_download",
        &[
            ("day", ColType::Int),
            ("client_ip", ColType::Int),
            ("server_ip", ColType::Int),
            ("client_asn", ColType::Int),
            ("oblast", ColType::Str),
            ("city", ColType::Str),
            ("tput", ColType::Float),
            ("min_rtt", ColType::Float),
            ("loss", ColType::Float),
        ],
    );
    // The two categorical columns draw from small closed vocabularies
    // (27 oblasts, ~2k cities); dictionary encoding stores one u32 code
    // per row instead of a heap String, and query filters compare codes.
    // Encoding is invisible to every value-level accessor, so tables
    // built row-wise and batch-wise stay cell-for-cell identical.
    t.dict_encode("oblast");
    t.dict_encode("city");
    t
}

/// Appends one unified row to a table created by [`empty_unified_table`].
pub fn push_unified_row(t: &mut Table, r: &UnifiedDownloadRow) {
    t.push(vec![
        Value::Int(r.day),
        Value::Int(r.client_ip.0 as i64),
        Value::Int(r.server_ip.0 as i64),
        Value::Int(r.client_asn.0 as i64),
        r.oblast.map(|o| Value::from(o.name())).unwrap_or(Value::Null),
        r.city.map(|c| Value::from(c.get().name)).unwrap_or(Value::Null),
        Value::Float(r.mean_tput_mbps),
        Value::Float(r.min_rtt_ms),
        Value::Float(r.loss_rate),
    ]);
}

impl Dataset {
    /// Ingests the unified rows into an `ndt-bq` table so the §4 analyses
    /// can be written as BigQuery-style queries.
    pub fn unified_table(&self) -> Table {
        let mut t = empty_unified_table();
        for r in &self.ndt {
            push_unified_row(&mut t, r);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(day: i64, oblast: Option<Oblast>) -> UnifiedDownloadRow {
        UnifiedDownloadRow {
            day,
            client_ip: Ipv4Addr(1),
            server_ip: Ipv4Addr(2),
            client_asn: Asn(100),
            oblast,
            city: None,
            mean_tput_mbps: 40.0,
            min_rtt_ms: 12.0,
            loss_rate: 0.01,
        }
    }

    #[test]
    fn unified_table_roundtrip() {
        let ds = Dataset {
            ndt: vec![row(419, Some(Oblast::KyivCity)), row(420, None)],
            traces: vec![],
        };
        let t = ds.unified_table();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, "oblast"), Value::from("Kiev City"));
        assert!(t.value(1, "oblast").is_null());
        assert_eq!(t.query().filter_not_null("oblast").count(), 1);
        assert!((t.query().mean("tput") - 40.0).abs() < 1e-12);
    }
}
