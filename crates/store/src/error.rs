//! Typed failures for shard I/O, page decoding and scans.
//!
//! Every structural problem with a shard — bad magic, torn page, checksum
//! mismatch, out-of-range dictionary code — surfaces as a variant here,
//! never as a panic. Callers that stream a corpus from disk match on
//! [`StoreError`] to distinguish "the file is corrupt" (re-generate the
//! shard) from "the schema is from a different build" (refuse to resume).

use crate::wire::CodecError;

/// Why a page payload failed to decode.
#[derive(Debug)]
pub enum PageError {
    /// The 36-byte page header was malformed (wrong magic or version).
    BadHeader,
    /// The payload's FNV-1a checksum does not match the header.
    Checksum { want: u64, got: u64 },
    /// The encoding tag is not one this build understands.
    Encoding(u8),
    /// The payload itself was truncated or held an invalid varint.
    Decode(CodecError),
    /// Bytes were left over after the declared row count was decoded.
    Trailing(usize),
    /// A dictionary code pointed past the end of the dictionary.
    CodeOutOfRange { code: u64, dict_len: usize },
    /// A decoded value does not fit the column's declared type.
    ValueOverflow { value: u64 },
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::BadHeader => write!(f, "malformed page header"),
            PageError::Checksum { want, got } => {
                write!(f, "payload checksum mismatch (header {want:#018x}, payload {got:#018x})")
            }
            PageError::Encoding(tag) => write!(f, "unknown encoding tag {tag}"),
            PageError::Decode(e) => write!(f, "payload decode failed: {e}"),
            PageError::Trailing(n) => write!(f, "{n} trailing byte(s) after last value"),
            PageError::CodeOutOfRange { code, dict_len } => {
                write!(f, "dictionary code {code} out of range for {dict_len}-entry dictionary")
            }
            PageError::ValueOverflow { value } => {
                write!(f, "value {value} overflows the column type")
            }
        }
    }
}

impl From<CodecError> for PageError {
    fn from(e: CodecError) -> Self {
        PageError::Decode(e)
    }
}

/// Why a shard could not be opened, scanned or written.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the shard magic.
    BadMagic,
    /// The shard was written by a newer format version.
    UnsupportedVersion(u16),
    /// The header / group / footer structure was malformed or truncated.
    Corrupt(CodecError),
    /// The shard's schema does not match what the caller expects.
    Schema(String),
    /// A specific page failed to validate or decode.
    Page {
        /// Column name as recorded in the shard header.
        column: String,
        /// Zero-based row-group index.
        group: usize,
        /// What went wrong inside the page.
        error: PageError,
    },
    /// The footer's checksum-of-page-checksums does not match the pages.
    Footer { want: u64, got: u64 },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a shard file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "shard format version {v} is newer than this build")
            }
            StoreError::Corrupt(e) => write!(f, "corrupt shard structure: {e}"),
            StoreError::Schema(msg) => write!(f, "schema mismatch: {msg}"),
            StoreError::Page { column, group, error } => {
                write!(f, "page error in column {column:?}, group {group}: {error}")
            }
            StoreError::Footer { want, got } => {
                write!(f, "footer checksum mismatch (footer {want:#018x}, pages {got:#018x})")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Corrupt(e)
    }
}

impl StoreError {
    /// Converts to an `io::Error` for callers whose error channel is I/O
    /// (the runner's pipeline stages).
    pub fn into_io(self) -> std::io::Error {
        match self {
            StoreError::Io(e) => e,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}
