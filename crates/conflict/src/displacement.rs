//! Population displacement and test-taking behaviour.
//!
//! Test counts are the paper's fourth metric (Figures 2a, 3a, 4; the count
//! columns of Tables 1 and 4), and they move for human reasons: people flee
//! besieged cities (Mariupol's counts "all but disappear" after March 1,
//! Kharkiv's drop after March 14), refugees arrive in the west (Lviv's
//! counts *rise* 41%), and people run speed tests *because* the network is
//! bad (the count spike accompanying the March 10 outages in Figure 2a).
//!
//! [`DisplacementModel`] produces a per-city activity multiplier per day.
//! The curve shapes come from a [`ndt_scenario::ScenarioSpec`]'s city
//! overrides and spike rules; magnitudes of the built-in `historical` spec
//! are calibrated so each curve's wartime mean matches the paper's Table 1
//! city count ratios, and the residual multiplier of non-key cities is
//! solved so the oblast totals track Table 4.

use crate::calendar::Period;
use ndt_geo::city::{cities_of, CityId};
use ndt_geo::Oblast;
use ndt_scenario::{Scenario, ScenarioSpec};
use std::collections::HashMap;

/// Time constant of the default wartime count ramp, in days. Short: the
/// paper's city count series (Figure 4) move within days of their events.
const COUNT_RAMP_TAU: f64 = 4.0;

/// Wartime mean of the default ramp over the 54-day period.
fn default_ramp_mean() -> f64 {
    let (s, e) = Period::Wartime2022.day_range();
    (s..e).map(|d| ramp((d - s) as f64, COUNT_RAMP_TAU)).sum::<f64>() / (e - s) as f64
}

fn ramp(t: f64, tau: f64) -> f64 {
    (t / tau).min(1.0)
}

/// Per-city daily activity multipliers under one scenario spec.
#[derive(Debug, Clone)]
pub struct DisplacementModel {
    spec: &'static ScenarioSpec,
    /// Residual wartime count target for non-key cities of each oblast.
    rest_target: HashMap<Oblast, f64>,
}

impl Default for DisplacementModel {
    fn default() -> Self {
        Self::new()
    }
}

impl DisplacementModel {
    /// The historical model (the paper's calibrated displacement).
    pub fn new() -> Self {
        Self::for_scenario(Scenario::HISTORICAL)
    }

    /// Builds the model for a scenario, solving each oblast's residual
    /// multiplier so the weighted city means reproduce the oblast count
    /// targets after the spec's override curves take their share.
    pub fn for_scenario(scenario: Scenario) -> Self {
        let spec = scenario.spec();
        let (s, e) = Period::Wartime2022.day_range();
        let override_mean = |city: &str| {
            let curve = spec.city_override(city).expect("known override city");
            (s..e).map(|d| curve.eval((d - s) as f64)).sum::<f64>() / (e - s) as f64
        };
        let mut rest_target = HashMap::new();
        for oblast in Oblast::all() {
            let target = crate::damage::oblast_profile(oblast).count_mult;
            let mut override_contrib = 0.0;
            let mut rest_weight = 0.0;
            for (_, city) in cities_of(oblast) {
                if spec.city_override(city.name).is_some() {
                    override_contrib += city.weight * override_mean(city.name);
                } else {
                    rest_weight += city.weight;
                }
            }
            let rest = if rest_weight > 1e-9 {
                ((target - override_contrib) / rest_weight).clamp(0.05, 3.0)
            } else {
                1.0
            };
            rest_target.insert(oblast, rest);
        }
        Self { spec, rest_target }
    }

    /// The spec this model evaluates.
    pub fn spec(&self) -> &'static ScenarioSpec {
        self.spec
    }

    /// Activity multiplier (relative to prewar) of a city on a day.
    pub fn city_activity(&self, city: CityId, day: i64) -> f64 {
        let start = self.spec.intensity.start_day;
        if day < start {
            return 1.0;
        }
        let t = (day - start) as f64;
        let c = city.get();
        if let Some(curve) = self.spec.city_override(c.name) {
            return curve.eval(t);
        }
        let target = self.rest_target.get(&c.oblast).copied().unwrap_or(1.0);
        // Scale the ramp so the wartime mean equals the target.
        let amplitude = (target - 1.0) / default_ramp_mean();
        (1.0 + amplitude * ramp(t, COUNT_RAMP_TAU)).max(0.02)
    }

    /// Behavioural test spike under this model's spec: people run speed
    /// tests when the network misbehaves.
    pub fn spike(&self, day: i64) -> f64 {
        self.spec.spike(day)
    }

    /// Behavioural test spike of the historical scenario. Largest around
    /// the March 10 national outages; a smaller bump in the first days of
    /// the invasion.
    pub fn test_spike(day: i64) -> f64 {
        Scenario::HISTORICAL.spec().spike(day)
    }
}

/// Convenience: mean wartime activity of a city under the model.
pub fn wartime_mean_activity(model: &DisplacementModel, city: CityId) -> f64 {
    let (s, e) = Period::Wartime2022.day_range();
    (s..e).map(|d| model.city_activity(city, d)).sum::<f64>() / (e - s) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::dates;
    use ndt_geo::city::{all_cities, city_by_name};

    fn id(name: &str) -> CityId {
        city_by_name(name).unwrap().0
    }

    #[test]
    fn prewar_activity_is_unity() {
        let m = DisplacementModel::new();
        for (cid, _) in all_cities() {
            assert_eq!(m.city_activity(cid, 400), 1.0);
            assert_eq!(m.city_activity(cid, 10), 1.0);
        }
    }

    #[test]
    fn mariupol_collapses_after_the_siege() {
        let m = DisplacementModel::new();
        let siege = dates::MARIUPOL_ENCIRCLED.day_index();
        assert_eq!(m.city_activity(id("Mariupol"), siege - 1), 1.0);
        assert!(m.city_activity(id("Mariupol"), siege + 10) < 0.05);
        assert!((m.city_activity(id("Mariupol"), siege + 30) - 0.01).abs() < 1e-9, "floor trickle");
        let mean = wartime_mean_activity(&m, id("Mariupol"));
        // Table 1: 26/296 ≈ 0.088 — within a factor ~2; the slow-decay
        // trickle deliberately keeps a few siege-period tests flowing so
        // the siege damage is observable at all (paper Figure 4 shows the
        // same thin tail).
        assert!((0.05..0.20).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn kharkiv_drops_after_shelling() {
        let m = DisplacementModel::new();
        let shell = dates::KHARKIV_SHELLING.day_index();
        assert_eq!(m.city_activity(id("Kharkiv"), shell - 1), 1.0);
        assert!(m.city_activity(id("Kharkiv"), shell + 10) < 0.6);
        let mean = wartime_mean_activity(&m, id("Kharkiv"));
        // Table 1: 1215/1839 ≈ 0.66.
        assert!((0.58..0.75).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn lviv_gains_refugees() {
        let m = DisplacementModel::new();
        let mean = wartime_mean_activity(&m, id("Lviv"));
        // Table 1: 1857/1315 ≈ 1.41.
        assert!((1.3..1.55).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn kyiv_mild_exodus() {
        let m = DisplacementModel::new();
        let mean = wartime_mean_activity(&m, id("Kyiv"));
        // Table 1: 8513/10023 ≈ 0.85.
        assert!((0.78..0.92).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn oblast_weighted_means_track_table4() {
        let m = DisplacementModel::new();
        for oblast in [Oblast::Donetsk, Oblast::Kherson, Oblast::Chernihiv, Oblast::Vinnytsya] {
            let target = crate::damage::oblast_profile(oblast).count_mult;
            let weighted: f64 = cities_of(oblast)
                .iter()
                .map(|(cid, c)| c.weight * wartime_mean_activity(&m, *cid))
                .sum();
            assert!(
                (weighted - target).abs() / target < 0.25,
                "{oblast}: weighted {weighted} vs target {target}"
            );
        }
    }

    #[test]
    fn spike_on_march_10() {
        let mar10 = dates::NATIONAL_OUTAGES.day_index();
        assert!(DisplacementModel::test_spike(mar10) > 1.7);
        assert!(DisplacementModel::test_spike(mar10 + 1) > 1.2);
        assert_eq!(DisplacementModel::test_spike(mar10 + 5), 1.0);
        assert_eq!(DisplacementModel::test_spike(400), 1.0);
        assert!(DisplacementModel::test_spike(dates::INVASION.day_index()) > 1.1);
    }

    #[test]
    fn refugee_flow_model_matches_historical_activity() {
        // Migration waves relocate clients in the simulator; the city
        // activity curves themselves are inherited from historical.
        let hist = DisplacementModel::new();
        let flow = DisplacementModel::for_scenario(Scenario::REFUGEE_FLOW);
        for day in [400, 430, 460] {
            let h = hist.city_activity(id("Lviv"), day);
            let f = flow.city_activity(id("Lviv"), day);
            assert_eq!(h.to_bits(), f.to_bits());
        }
    }
}
