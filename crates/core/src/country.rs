//! Two-country comparison (the asymmetric scenarios of `ndt-scenario`).
//!
//! An asymmetric scenario attaches a `second_country` block to its spec: a
//! separate national corpus generated under its own scenario, seed salt
//! and scale. The full corpus of country B is never carried around — it is
//! folded into a compact per-period [`CountryDigest`] (test counts and
//! metric means per study period), which the pipeline checkpoints, the
//! columnar store persists (`country-b.digest.txt`), and the `table_ab`
//! analysis stage renders as a side-by-side degradation table.
//!
//! The digest's text form round-trips `f64`s through their bit patterns,
//! so a digest written by `generate --format columnar` and re-read by
//! `report --from-store` reproduces the table byte-for-byte.

use crate::dataset::StudyData;
use crate::error::AnalysisError;
use ndt_conflict::Period;
use ndt_mlab::sim::Scenario;
use ndt_mlab::SimConfig;
use serde::Serialize;

/// One study period's aggregate metrics for one country.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PeriodStats {
    pub period: Period,
    /// Unified rows in the period.
    pub tests: u64,
    /// Mean download throughput (Mbps); NaN when the period is empty.
    pub mean_tput: f64,
    /// Mean minimum RTT (ms); NaN when the period is empty.
    pub mean_rtt: f64,
    /// Mean loss rate; NaN when the period is empty.
    pub mean_loss: f64,
}

/// A country's per-period corpus digest, in [`Period::ALL`] order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CountryDigest {
    pub name: String,
    pub periods: Vec<PeriodStats>,
}

/// Magic first line of the digest's text form.
const DIGEST_MAGIC: &str = "country-digest v1";

impl CountryDigest {
    /// Digests a corpus: per-period test counts and metric means.
    pub fn from_study(name: &str, data: &StudyData) -> Self {
        let periods = Period::ALL
            .iter()
            .map(|&p| {
                let q = data.period(p);
                PeriodStats {
                    period: p,
                    tests: q.count() as u64,
                    mean_tput: q.mean("tput"),
                    mean_rtt: q.mean("min_rtt"),
                    mean_loss: q.mean("loss"),
                }
            })
            .collect();
        Self { name: name.to_string(), periods }
    }

    /// Text form: a magic line, the country name, then one line per
    /// period with the `f64`s as bit patterns (lossless round-trip).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(DIGEST_MAGIC);
        out.push('\n');
        out.push_str("name ");
        out.push_str(&self.name);
        out.push('\n');
        for (i, s) in self.periods.iter().enumerate() {
            out.push_str(&format!(
                "period {i} {} {:016x} {:016x} {:016x}\n",
                s.tests,
                s.mean_tput.to_bits(),
                s.mean_rtt.to_bits(),
                s.mean_loss.to_bits()
            ));
        }
        out
    }

    /// Parses [`Self::to_text`] output.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(DIGEST_MAGIC) {
            return Err(format!("not a country digest (missing '{DIGEST_MAGIC}' header)"));
        }
        let name = lines
            .next()
            .and_then(|l| l.strip_prefix("name "))
            .ok_or("missing 'name' line")?
            .to_string();
        let mut periods = Vec::new();
        for line in lines.filter(|l| !l.trim().is_empty()) {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 6 || parts[0] != "period" {
                return Err(format!("malformed digest line '{line}'"));
            }
            let idx: usize =
                parts[1].parse().map_err(|_| format!("bad period index '{}'", parts[1]))?;
            let period = *Period::ALL
                .get(idx)
                .ok_or_else(|| format!("period index {idx} out of range"))?;
            let tests: u64 =
                parts[2].parse().map_err(|_| format!("bad test count '{}'", parts[2]))?;
            let bits = |s: &str| {
                u64::from_str_radix(s, 16)
                    .map(f64::from_bits)
                    .map_err(|_| format!("bad f64 bits '{s}'"))
            };
            periods.push(PeriodStats {
                period,
                tests,
                mean_tput: bits(parts[3])?,
                mean_rtt: bits(parts[4])?,
                mean_loss: bits(parts[5])?,
            });
        }
        if periods.len() != Period::ALL.len() {
            return Err(format!(
                "digest has {} periods, expected {}",
                periods.len(),
                Period::ALL.len()
            ));
        }
        Ok(Self { name, periods })
    }

    fn stats(&self, p: Period) -> &PeriodStats {
        &self.periods[Period::ALL.iter().position(|q| *q == p).expect("period in ALL")]
    }
}

/// Formats a war/prewar ratio, "-" when the baseline is unusable.
fn ratio(war: f64, pre: f64) -> String {
    if pre.is_finite() && pre != 0.0 && war.is_finite() {
        format!("{:.2}x", war / pre)
    } else {
        "-".to_string()
    }
}

/// The side-by-side degradation table: for each country, prewar-2022 vs
/// wartime-2022 test counts and metric means, with war/prewar ratios.
pub fn render_comparison(countries: &[&CountryDigest]) -> String {
    let mut out = String::new();
    out.push_str(
        "country        period         tests     tput    rtt     loss      tput-x  rtt-x   loss-x\n",
    );
    for c in countries {
        let pre = c.stats(Period::Prewar2022);
        let war = c.stats(Period::Wartime2022);
        for (label, s) in [("prewar", pre), ("wartime", war)] {
            out.push_str(&format!(
                "{:<14} {:<12} {:>7}  {:>7.2} {:>6.2} {:>9.6}",
                c.name, label, s.tests, s.mean_tput, s.mean_rtt, s.mean_loss
            ));
            if label == "wartime" {
                out.push_str(&format!(
                    "  {:>6}  {:>6}  {:>6}",
                    ratio(war.mean_tput, pre.mean_tput),
                    ratio(war.mean_rtt, pre.mean_rtt),
                    ratio(war.mean_loss, pre.mean_loss)
                ));
            }
            out.push('\n');
        }
    }
    out
}

/// The `table_ab` stage body: country A digested from the corpus in hand,
/// country B from the digest the pipeline (or the store) attached.
pub fn table_ab(data: &StudyData) -> Result<String, AnalysisError> {
    let b = data.second_country.as_ref().ok_or_else(|| AnalysisError::Degenerate {
        what: "table_ab needs a second-country digest (asymmetric scenarios only)".to_string(),
    })?;
    let a = CountryDigest::from_study("ukraine", data);
    Ok(render_comparison(&[&a, b]))
}

/// Generates country B's corpus for a config whose scenario declares a
/// `second_country`, and digests it. `Ok(None)` for single-country
/// scenarios. Country B runs under its own scenario, a salted seed and a
/// scaled corpus size, but inherits every other knob — including
/// `threads` and the fault plan — so its digest is deterministic whenever
/// the primary corpus is.
pub fn second_country_digest(cfg: &SimConfig) -> Result<Option<CountryDigest>, AnalysisError> {
    let spec = cfg.scenario.spec();
    let Some(cs) = &spec.second_country else {
        return Ok(None);
    };
    let scenario = Scenario::by_name(&cs.scenario).ok_or_else(|| AnalysisError::Degenerate {
        what: format!("second-country scenario '{}' is not registered", cs.scenario),
    })?;
    let bcfg = SimConfig {
        seed: cfg.seed ^ cs.seed_salt,
        scale: cfg.scale * cs.scale_mult,
        scenario,
        ..*cfg
    };
    let data = StudyData::generate(bcfg);
    Ok(Some(CountryDigest::from_study(&cs.name, &data)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_support::shared_small;

    #[test]
    fn digest_text_roundtrips_bit_exactly() {
        let d = CountryDigest::from_study("ukraine", shared_small());
        let back = CountryDigest::parse(&d.to_text()).expect("parses");
        assert_eq!(d, back);
        assert_eq!(d.to_text(), back.to_text());
    }

    #[test]
    fn parse_rejects_malformed_digests() {
        assert!(CountryDigest::parse("nope").is_err());
        assert!(CountryDigest::parse("country-digest v1\nname x\n").is_err(), "missing periods");
        assert!(CountryDigest::parse("country-digest v1\nname x\nperiod 9 1 0 0 0\n").is_err());
        assert!(CountryDigest::parse("country-digest v1\nname x\nperiod 0 1 zz 0 0\n").is_err());
    }

    #[test]
    fn second_country_only_for_asymmetric_scenarios() {
        let cfg = SimConfig::small(3);
        assert!(second_country_digest(&cfg).expect("historical computes").is_none());
        let b = second_country_digest(&SimConfig { scenario: Scenario::ASYMMETRIC, ..cfg })
            .expect("asymmetric computes")
            .expect("has a second country");
        assert_eq!(b.name, "country-b");
        let war = b.stats(Period::Wartime2022);
        assert!(war.tests > 0, "country B generated a corpus");
    }

    #[test]
    fn table_ab_renders_both_countries() {
        let mut data = StudyData::from_dataset(shared_small().raw.clone());
        assert!(table_ab(&data).is_err(), "no second country attached");
        let b = second_country_digest(&SimConfig {
            scenario: Scenario::ASYMMETRIC,
            ..SimConfig::small(1234)
        })
        .expect("computes")
        .expect("present");
        data.second_country = Some(b);
        let t = table_ab(&data).expect("renders");
        assert!(t.contains("ukraine"));
        assert!(t.contains("country-b"));
        assert!(t.contains("wartime"));
    }
}
