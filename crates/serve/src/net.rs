//! Line-oriented TCP front for the in-process server.
//!
//! The protocol is deliberately tiny — one request per connection, plain
//! `std::net`, no dependencies:
//!
//! ```text
//! client → server:   GET <stage>[ deadline_ms=<n>]\n
//! server → client:   OK <byte-len>\n<body bytes>
//!                or  ERR <code>[ <detail>]\n
//! ```
//!
//! Error codes mirror [`ServeError`] variants one-to-one
//! (`unknown-stage`, `overloaded <retry-ms>`, `draining`, `deadline`,
//! `panicked <msg>`, `failed <msg>`), so a client can distinguish "back
//! off and retry" from "this request is wrong" from "the server is going
//! away" — the typed-rejection half of the overload contract survives
//! the wire.
//!
//! [`serve_tcp`] accepts with a non-blocking poll so a shutdown flag flip
//! stops admission promptly; each connection is handled on its own
//! thread, and every connection thread is joined before [`serve_tcp`]
//! returns — in-flight responses are delivered through a drain, never
//! truncated.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::server::{ServeError, ServerHandle};

/// Per-connection socket read/write timeout. Generous: it only bounds a
/// stalled peer, not request latency (the server's deadline does that).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Accept-poll interval while the listener is idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// One wire request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Analysis stage name (see [`ndt_analysis::ANALYSIS_STAGES`]).
    pub stage: String,
    /// Optional per-request deadline; `None` uses the server default.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A request for `stage` with the server's default deadline.
    pub fn new(stage: impl Into<String>) -> Self {
        Request { stage: stage.into(), deadline_ms: None }
    }

    /// Renders the request line (without the trailing newline).
    pub fn to_line(&self) -> String {
        match self.deadline_ms {
            Some(ms) => format!("GET {} deadline_ms={ms}", self.stage),
            None => format!("GET {}", self.stage),
        }
    }

    /// Parses a request line; `None` on malformed input.
    pub fn parse(line: &str) -> Option<Request> {
        let mut parts = line.trim_end().split(' ');
        if parts.next() != Some("GET") {
            return None;
        }
        let stage = parts.next()?.to_string();
        if stage.is_empty() {
            return None;
        }
        let mut deadline_ms = None;
        for extra in parts {
            let ms = extra.strip_prefix("deadline_ms=")?;
            deadline_ms = Some(ms.parse().ok()?);
        }
        Some(Request { stage, deadline_ms })
    }
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The report fragment.
    Ok(String),
    /// A typed rejection or failure.
    Err(ServeError),
}

fn flatten(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

/// Encodes the error half of the protocol (`ERR ...` line, no newline).
fn encode_error(err: &ServeError) -> String {
    match err {
        ServeError::UnknownStage(s) => format!("ERR unknown-stage {}", flatten(s)),
        ServeError::Overloaded { retry_after } => {
            format!("ERR overloaded {}", retry_after.as_millis())
        }
        ServeError::Draining => "ERR draining".to_string(),
        ServeError::DeadlineExceeded => "ERR deadline".to_string(),
        ServeError::Panicked(msg) => format!("ERR panicked {}", flatten(msg)),
        ServeError::Failed(msg) => format!("ERR failed {}", flatten(msg)),
    }
}

/// Decodes an `ERR ...` line back into a [`ServeError`].
fn decode_error(line: &str) -> Option<ServeError> {
    let rest = line.strip_prefix("ERR ")?.trim_end();
    let (code, detail) = match rest.split_once(' ') {
        Some((c, d)) => (c, d),
        None => (rest, ""),
    };
    Some(match code {
        "unknown-stage" => ServeError::UnknownStage(detail.to_string()),
        "overloaded" => ServeError::Overloaded {
            retry_after: Duration::from_millis(detail.parse().ok()?),
        },
        "draining" => ServeError::Draining,
        "deadline" => ServeError::DeadlineExceeded,
        "panicked" => ServeError::Panicked(detail.to_string()),
        "failed" => ServeError::Failed(detail.to_string()),
        _ => return None,
    })
}

fn handle_conn(stream: TcpStream, handle: &ServerHandle) -> io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut stream = reader.into_inner();
    let Some(req) = Request::parse(&line) else {
        stream.write_all(b"ERR failed malformed request line\n")?;
        return Ok(());
    };
    let deadline = req.deadline_ms.map(Duration::from_millis);
    match handle.submit(&req.stage, deadline) {
        Ok(body) => {
            stream.write_all(format!("OK {}\n", body.len()).as_bytes())?;
            stream.write_all(body.as_bytes())?;
        }
        Err(e) => {
            stream.write_all(encode_error(&e).as_bytes())?;
            stream.write_all(b"\n")?;
        }
    }
    stream.flush()
}

/// Serves requests from `listener` until `shutdown` flips true, then
/// joins every in-flight connection thread (their responses are
/// delivered) and returns. Pair with [`crate::Server::drain`]: flip the
/// flag, drain the server, join the `serve_tcp` thread.
pub fn serve_tcp(
    listener: TcpListener,
    handle: ServerHandle,
    shutdown: Arc<AtomicBool>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let handle = handle.clone();
                let t = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        // Socket errors fail one connection, never the
                        // accept loop.
                        let _ = handle_conn(stream, &handle);
                    })?;
                conns.push(t);
                conns.retain(|c| !c.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conns.retain(|c| !c.is_finished());
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(e),
        }
    }
    for c in conns {
        let _ = c.join();
    }
    Ok(())
}

/// Client side: one request over a fresh connection. Transport failures
/// surface as `io::Error`; server-side rejections come back as
/// [`Reply::Err`].
pub fn fetch(addr: &str, req: &Request, timeout: Duration) -> io::Result<Reply> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    stream.write_all(req.to_line().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    if let Some(len) = status.strip_prefix("OK ") {
        let len: usize = len.trim_end().parse().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad OK length: {status:?}"))
        })?;
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(Reply::Ok(body))
    } else if status.starts_with("ERR ") || status.trim_end() == "ERR" {
        decode_error(&status)
            .map(Reply::Err)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad ERR line: {status:?}"))
            })
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unrecognised status line: {status:?}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        for req in [
            Request::new("fig2"),
            Request { stage: "table1".into(), deadline_ms: Some(250) },
        ] {
            assert_eq!(Request::parse(&req.to_line()), Some(req.clone()));
        }
        assert_eq!(Request::parse("PUT fig2"), None);
        assert_eq!(Request::parse("GET"), None);
        assert_eq!(Request::parse("GET fig2 deadline_ms=abc"), None);
    }

    #[test]
    fn error_codes_round_trip() {
        let errors = [
            ServeError::UnknownStage("nope".into()),
            ServeError::Overloaded { retry_after: Duration::from_millis(100) },
            ServeError::Draining,
            ServeError::DeadlineExceeded,
            ServeError::Panicked("boom with spaces".into()),
            ServeError::Failed("degenerate input: empty window".into()),
        ];
        for err in errors {
            let line = encode_error(&err);
            assert_eq!(decode_error(&line), Some(err.clone()), "{line}");
        }
        assert_eq!(decode_error("ERR gibberish"), None);
    }

    #[test]
    fn panic_messages_with_newlines_stay_single_line() {
        let line = encode_error(&ServeError::Panicked("line one\nline two".into()));
        assert!(!line.contains('\n'), "{line:?}");
        assert_eq!(
            decode_error(&line),
            Some(ServeError::Panicked("line one line two".into()))
        );
    }
}
