//! Ablation benches for the design choices DESIGN.md calls out: congestion
//! control response, routing under failure, the statistics hot paths, and
//! the geolocation error model.

use criterion::{criterion_group, criterion_main, Criterion};
use ndt_geo::{city::city_by_name, GeoDb};
use ndt_stats::{student_t_cdf, welch_t_test};
use ndt_tcp::{BulkTransfer, CongestionControl, FluidSim, PathCharacteristics, TransferConfig};
use ndt_topology::asn::well_known as wk;
use ndt_topology::{build_topology, RoutingEngine, TopologyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));

    // BBR vs CUBIC: one NDT transfer over a wartime path.
    let path = PathCharacteristics::new(40.0, 60.0, 0.03);
    for cca in [CongestionControl::Bbr, CongestionControl::Cubic] {
        let t = BulkTransfer::new(TransferConfig { cca, ..Default::default() });
        g.bench_function(format!("transfer_{cca:?}"), |b| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| black_box(t.run(black_box(&path), &mut rng)))
        });
    }

    // Response function vs dynamic fluid model: the cost gap that justifies
    // using the closed form in the million-transfer simulator.
    g.bench_function("transfer_fluid_dynamic_bbr", |b| {
        let sim = FluidSim::new(CongestionControl::Bbr, 10.0);
        let mut rng = StdRng::seed_from_u64(41);
        b.iter(|| black_box(sim.run(40.0, 60.0, 0.03, &mut rng)))
    });

    // Routing: healthy vs a flapping topology (cache-busting reroutes).
    let bt = build_topology(&TopologyConfig::default());
    let warsaw = bt.mlab_hosts.iter().find(|h| h.metro == "Warsaw").unwrap().asn;
    g.bench_function("route_select_healthy", |b| {
        let mut eng = RoutingEngine::new();
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(eng.select_path(&bt.topology, warsaw, wk::KYIVSTAR, &mut rng)))
    });
    g.bench_function("route_select_under_failure_churn", |b| {
        let mut topo = bt.topology.clone();
        let mut eng = RoutingEngine::new();
        let mut rng = StdRng::seed_from_u64(6);
        let cogent_links = topo.links_between(wk::UKRTELECOM_TRANSIT, wk::HURRICANE_ELECTRIC);
        let mut down = false;
        b.iter(|| {
            // Alternate link state every iteration: worst-case cache misses.
            down = !down;
            for l in &cogent_links {
                topo.set_link_up(*l, !down);
            }
            black_box(eng.select_path(&topo, warsaw, wk::KYIVSTAR, &mut rng))
        })
    });

    // Statistics hot paths.
    let a: Vec<f64> = (0..2_000).map(|i| (i % 97) as f64).collect();
    let b2: Vec<f64> = (0..2_000).map(|i| (i % 89) as f64 * 1.1).collect();
    g.bench_function("welch_t_test_2k_samples", |bch| {
        bch.iter(|| black_box(welch_t_test(black_box(&a), black_box(&b2))))
    });
    g.bench_function("student_t_cdf", |bch| {
        bch.iter(|| black_box(student_t_cdf(black_box(-7.3), black_box(1_234.5))))
    });

    // Geolocation lookup: noisy model vs perfect oracle.
    let (kyiv, _) = city_by_name("Kyiv").unwrap();
    for (label, db) in [("paper", GeoDb::paper_defaults()), ("oracle", GeoDb::perfect())] {
        g.bench_function(format!("geodb_lookup_{label}"), |bch| {
            let mut rng = StdRng::seed_from_u64(7);
            bch.iter(|| black_box(db.lookup(black_box(kyiv), &mut rng)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
