//! Dated events the paper cites, as machine-readable structs.

use crate::calendar::{dates, Date};
use ndt_topology::Asn;
use serde::{Deserialize, Serialize};

/// Category of a narrative event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Start of the invasion.
    Invasion,
    /// A city besieged/encircled.
    Siege,
    /// Mass shelling of a city.
    Shelling,
    /// A network-infrastructure outage.
    Outage,
    /// Territory regained by Ukraine.
    Withdrawal,
}

/// A narrative event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    pub date: Date,
    pub kind: EventKind,
    pub description: &'static str,
}

/// The §2/§4 event timeline.
pub fn key_events() -> Vec<Event> {
    vec![
        Event { date: dates::INVASION, kind: EventKind::Invasion, description: "Russia begins large-scale invasion of Ukraine" },
        Event { date: dates::MARIUPOL_ENCIRCLED, kind: EventKind::Siege, description: "Russian forces surround Mariupol" },
        Event { date: dates::NATIONAL_OUTAGES, kind: EventKind::Outage, description: "Ukrtelecom down nationally 40 min; Triolan down 12+ h after cyberattack" },
        Event { date: dates::KHARKIV_SHELLING, kind: EventKind::Shelling, description: "Kharkiv struck 65 times; 600+ residential buildings destroyed" },
        Event { date: dates::KYIV_REGAINED, kind: EventKind::Withdrawal, description: "Ukraine regains Kyiv axis; Russian withdrawal from the north" },
        Event { date: dates::STUDY_END, kind: EventKind::Shelling, description: "Missile bombardment of Lviv" },
    ]
}

/// A transit-network outage affecting routing availability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageEvent {
    pub day: i64,
    pub asn: Asn,
    /// Fraction of the day the network was unreachable.
    pub down_fraction: f64,
}

/// Outages active on a given day under the historical scenario (the
/// March 10 Ukrtelecom + Triolan events the paper corroborates via Doug
/// Madory's reporting).
pub fn outages_on(day: i64) -> Vec<OutageEvent> {
    outages_for(ndt_scenario::Scenario::HISTORICAL.spec(), day)
}

/// Outages active on a given day under a scenario spec's outage rules, in
/// rule order.
pub fn outages_for(spec: &ndt_scenario::ScenarioSpec, day: i64) -> Vec<OutageEvent> {
    spec.outages
        .iter()
        .filter(|o| o.day == day)
        .map(|o| OutageEvent { day, asn: Asn(o.asn), down_fraction: o.down_fraction })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndt_topology::asn::well_known as wk;

    #[test]
    fn timeline_is_chronological_and_inside_window() {
        let ev = key_events();
        assert!(ev.windows(2).all(|w| w[0].date <= w[1].date));
        assert_eq!(ev.first().unwrap().date, dates::INVASION);
        assert!(ev.iter().all(|e| e.date.day_index() <= dates::STUDY_END.day_index()));
    }

    #[test]
    fn outages_only_around_march_10() {
        let mar10 = dates::NATIONAL_OUTAGES.day_index();
        assert_eq!(outages_on(mar10).len(), 2);
        assert_eq!(outages_on(mar10 + 1).len(), 1);
        assert!(outages_on(mar10 - 1).is_empty());
        assert!(outages_on(0).is_empty());
    }

    #[test]
    fn ukrtelecom_outage_is_40_minutes() {
        let mar10 = dates::NATIONAL_OUTAGES.day_index();
        let o = outages_on(mar10)
            .into_iter()
            .find(|o| o.asn == wk::UKRTELECOM_TRANSIT)
            .unwrap();
        assert!((o.down_fraction - 40.0 / 1440.0).abs() < 1e-12);
    }
}
