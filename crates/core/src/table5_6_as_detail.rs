//! Tables 5 & 6 (Appendix): AS-level mean/median/std detail and the
//! p-values behind Table 3's stars.

use crate::coverage::Coverage;
use crate::dataset::StudyData;
use crate::error::AnalysisError;
use crate::render::text_table;
use crate::table3_as;
use ndt_conflict::Period;
use ndt_stats::{median, welch_t_test, Summary};
use ndt_topology::Asn;
use serde::{Deserialize, Serialize};

/// Mean/median/std triple for one metric (a Table 5 cell group).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    pub mean: f64,
    pub median: f64,
    pub std: f64,
}

impl Spread {
    fn of(v: &[f64]) -> Spread {
        let s = Summary::of(v);
        Spread { mean: s.mean(), median: median(v), std: s.std_dev() }
    }
}

/// One (AS, period) half-row of Table 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsPeriodDetail {
    pub asn: Asn,
    pub period: Period,
    pub tput: Spread,
    pub min_rtt: Spread,
    pub loss: Spread,
    pub count: usize,
}

/// One Table 6 row: the p-values per metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsPValues {
    pub asn: Asn,
    pub p_tput: f64,
    pub p_rtt: f64,
    pub p_loss: f64,
}

/// Tables 5 and 6 together (they share the same sample extraction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsDetail {
    pub detail: Vec<AsPeriodDetail>,
    pub p_values: Vec<AsPValues>,
    /// Degradation accounting (inherits Table 3's, plus thin half-rows).
    pub coverage: Coverage,
}

/// Computes the appendix tables for the same top-`n` ASes as Table 3.
pub fn compute(data: &StudyData, n: usize) -> Result<AsDetail, AnalysisError> {
    let table3 = table3_as::compute(data, n)?;
    let mut cov = table3.coverage.clone();
    let mut detail = Vec::new();
    let mut p_values = Vec::new();
    for row in &table3.rows {
        /// (throughputs, min RTTs, loss rates) of one period's tests.
        type MetricSamples = (Vec<f64>, Vec<f64>, Vec<f64>);
        let mut samples: std::collections::HashMap<Period, MetricSamples> = Default::default();
        for period in [Period::Prewar2022, Period::Wartime2022] {
            let (tput, rtt, loss) = samples.entry(period).or_default();
            for r in data.traces_in(period).filter(|r| r.as_path.contains(&row.asn)) {
                tput.push(r.mean_tput_mbps);
                rtt.push(r.min_rtt_ms);
                loss.push(r.loss_rate);
            }
        }
        for period in [Period::Prewar2022, Period::Wartime2022] {
            let (tput, rtt, loss) = &samples[&period];
            cov.note_sample(format!("AS{}/{:?}", row.asn.0, period), tput.len());
            detail.push(AsPeriodDetail {
                asn: row.asn,
                period,
                tput: Spread::of(tput),
                min_rtt: Spread::of(rtt),
                loss: Spread::of(loss),
                count: tput.len(),
            });
        }
        let pre = &samples[&Period::Prewar2022];
        let war = &samples[&Period::Wartime2022];
        p_values.push(AsPValues {
            asn: row.asn,
            p_tput: welch_t_test(&pre.0, &war.0).p,
            p_rtt: welch_t_test(&pre.1, &war.1).p,
            p_loss: welch_t_test(&pre.2, &war.2).p,
        });
    }
    Ok(AsDetail { detail, p_values, coverage: cov })
}

impl AsDetail {
    /// Detail row lookup.
    pub fn detail_of(&self, asn: Asn, period: Period) -> Option<&AsPeriodDetail> {
        self.detail.iter().find(|d| d.asn == asn && d.period == period)
    }

    /// P-value row lookup.
    pub fn p_of(&self, asn: Asn) -> Option<&AsPValues> {
        self.p_values.iter().find(|p| p.asn == asn)
    }

    /// Table 5 rendering.
    pub fn render_table5(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .detail
            .iter()
            .map(|d| {
                vec![
                    d.asn.0.to_string(),
                    match d.period {
                        Period::Prewar2022 => "Prewar".to_string(),
                        Period::Wartime2022 => "Wartime".to_string(),
                        p => p.label().to_string(),
                    },
                    format!("{:.3}", d.tput.mean),
                    format!("{:.3}", d.tput.median),
                    format!("{:.3}", d.tput.std),
                    format!("{:.3}", d.min_rtt.mean),
                    format!("{:.3}", d.min_rtt.median),
                    format!("{:.3}", d.min_rtt.std),
                    format!("{:.4}", d.loss.mean),
                    format!("{:.4}", d.loss.median),
                    format!("{:.4}", d.loss.std),
                    d.count.to_string(),
                ]
            })
            .collect();
        let mut out = text_table(
            &[
                "ASN", "Period", "TputMean", "TputMed", "TputStd", "RTTMean", "RTTMed", "RTTStd",
                "LossMean", "LossMed", "LossStd", "Count",
            ],
            &rows,
        );
        out.push_str(&self.coverage.footer());
        out
    }

    /// Table 6 rendering.
    pub fn render_table6(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .p_values
            .iter()
            .map(|p| {
                vec![
                    p.asn.0.to_string(),
                    format!("{:.3e}", p.p_tput),
                    format!("{:.3e}", p.p_rtt),
                    format!("{:.3e}", p.p_loss),
                ]
            })
            .collect();
        text_table(&["ASN", "MeanTput p", "MinRTT p", "LossRate p"], &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_support::shared_medium;
    use ndt_topology::asn::well_known as wk;
    use std::sync::OnceLock;

    fn detail() -> &'static AsDetail {
        static D: OnceLock<AsDetail> = OnceLock::new();
        D.get_or_init(|| compute(shared_medium(), 10).expect("clean corpus computes"))
    }

    #[test]
    fn two_period_rows_per_as() {
        let d = detail();
        assert_eq!(d.detail.len(), 20);
        assert_eq!(d.p_values.len(), 10);
    }

    #[test]
    fn spreads_are_internally_consistent() {
        let d = detail();
        for row in &d.detail {
            assert!(row.count > 0, "{} {:?} empty", row.asn, row.period);
            assert!(row.tput.std >= 0.0);
            assert!(row.loss.mean >= 0.0 && row.loss.mean <= 1.0);
            // Right-skewed metrics: means sit above medians for throughput.
            assert!(row.tput.mean >= row.tput.median * 0.5);
        }
    }

    #[test]
    fn p_values_match_table3_stars() {
        let d = detail();
        let t3 = crate::table3_as::compute(shared_medium(), 10).expect("clean corpus computes");
        for p in &d.p_values {
            let row = t3.row(p.asn).unwrap();
            assert_eq!(p.p_loss < 0.05, row.loss_test.significant(), "{}", p.asn);
            assert!((p.p_loss - row.loss_test.p).abs() < 1e-9);
        }
    }

    #[test]
    fn kyivstar_wartime_loss_spread_widens() {
        let d = detail();
        let pre = d.detail_of(wk::KYIVSTAR, Period::Prewar2022).unwrap();
        let war = d.detail_of(wk::KYIVSTAR, Period::Wartime2022).unwrap();
        assert!(war.loss.mean > pre.loss.mean);
        assert!(war.loss.std > pre.loss.std, "paper Table 5: loss std widens in wartime");
    }

    #[test]
    fn renders() {
        let d = detail();
        assert!(d.render_table5().contains("TputMean"));
        assert!(d.render_table6().contains("LossRate p"));
    }
}
