//! Table 3: metric changes for the top-10 most frequently occurring ASes,
//! underlined when exceeding 2021 baseline fluctuations, starred when
//! Welch-significant.
//!
//! §5.2: "For each traceroute …, we made note of which AS each hop belonged
//! to. We focus now on the top 10 most frequently occurring ASes." The
//! paper's key observation: damage is heterogeneous — Kyivstar loses
//! throughput, UARNet/Kyiv Telecom gain RTT, Emplot nearly vanishes, while
//! TeNeT and SKIF ride out the war at baseline.

use crate::coverage::Coverage;
use crate::dataset::StudyData;
use crate::error::AnalysisError;
use crate::render::{pct, text_table, times};
use ndt_conflict::Period;
use ndt_mlab::Scamper1Row;
use ndt_stats::{welch_t_test, WelchTTest};
use ndt_topology::Asn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One AS's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsChangeRow {
    pub asn: Asn,
    pub name: String,
    pub tests_prewar: usize,
    pub tests_wartime: usize,
    /// Relative count change.
    pub d_counts: f64,
    /// Relative throughput change with its test.
    pub d_tput: f64,
    pub tput_test: WelchTTest,
    /// Relative RTT change with its test.
    pub d_rtt: f64,
    pub rtt_test: WelchTTest,
    /// Loss ratio (×) with its test.
    pub loss_ratio: f64,
    pub loss_test: WelchTTest,
}

/// Worst-case 2021 fluctuations (the table's last row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineFluctuation {
    pub d_counts: f64,
    pub d_tput: f64,
    pub d_rtt: f64,
    pub loss_ratio: f64,
}

/// Table 3 (plus the underlying per-metric samples living in Tables 5/6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsTable {
    pub rows: Vec<AsChangeRow>,
    pub baseline: BaselineFluctuation,
    /// Share of all considered tests routed through the top-10 (the paper:
    /// 25.6% of 852,738).
    pub top10_share: f64,
    /// Degradation accounting: AS rows resting on thin period samples are
    /// flagged, as is a ranking that could not fill all `n` slots.
    pub coverage: Coverage,
}

/// Tests traversing each AS within a period.
fn tests_through(data: &StudyData, period: Period) -> HashMap<Asn, Vec<&Scamper1Row>> {
    let mut map: HashMap<Asn, Vec<&Scamper1Row>> = HashMap::new();
    for r in data.traces_in(period) {
        for asn in &r.as_path {
            map.entry(*asn).or_default().push(r);
        }
    }
    map
}

/// Top-`n` *named Ukrainian access* ASes by traceroute occurrence in the
/// 2022 window. The paper's table lists named access networks; our
/// synthetic tail ASes (ASN ≥ [`SYNTHETIC_ASN_BASE`]) each aggregate many
/// small real-world ISPs, so including them in a per-AS ranking would be a
/// modeling artifact — they are excluded, exactly as the paper's long tail
/// never surfaces individually.
///
/// [`SYNTHETIC_ASN_BASE`]: ndt_topology::build::SYNTHETIC_ASN_BASE
fn top_ases(data: &StudyData, n: usize) -> Vec<Asn> {
    use ndt_topology::build::SYNTHETIC_ASN_BASE;
    // Access network = the last AS of a path.
    let mut eyeballs: HashMap<Asn, usize> = HashMap::new();
    for r in data.traces_in(Period::Prewar2022).chain(data.traces_in(Period::Wartime2022)) {
        if let Some(last) = r.as_path.last() {
            if last.0 < SYNTHETIC_ASN_BASE {
                *eyeballs.entry(*last).or_default() += 1;
            }
        }
    }
    let mut top: Vec<(Asn, usize)> = eyeballs.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top.truncate(n);
    top.into_iter().map(|(a, _)| a).collect()
}

fn change_row(data: &StudyData, asn: Asn) -> AsChangeRow {
    let pre = tests_through(data, Period::Prewar2022).remove(&asn).unwrap_or_default();
    let war = tests_through(data, Period::Wartime2022).remove(&asn).unwrap_or_default();
    let metric = |rows: &[&Scamper1Row], f: fn(&Scamper1Row) -> f64| -> Vec<f64> {
        rows.iter().map(|r| f(r)).collect()
    };
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let tput_pre = metric(&pre, |r| r.mean_tput_mbps);
    let tput_war = metric(&war, |r| r.mean_tput_mbps);
    let rtt_pre = metric(&pre, |r| r.min_rtt_ms);
    let rtt_war = metric(&war, |r| r.min_rtt_ms);
    let loss_pre = metric(&pre, |r| r.loss_rate);
    let loss_war = metric(&war, |r| r.loss_rate);
    let name = data
        .name_of(asn)
        .unwrap_or_else(|| asn.to_string());
    AsChangeRow {
        asn,
        name,
        tests_prewar: pre.len(),
        tests_wartime: war.len(),
        d_counts: (war.len() as f64 - pre.len() as f64) / pre.len().max(1) as f64,
        d_tput: (mean(&tput_war) - mean(&tput_pre)) / mean(&tput_pre),
        tput_test: welch_t_test(&tput_pre, &tput_war),
        d_rtt: (mean(&rtt_war) - mean(&rtt_pre)) / mean(&rtt_pre),
        rtt_test: welch_t_test(&rtt_pre, &rtt_war),
        loss_ratio: mean(&loss_war) / mean(&loss_pre),
        loss_test: welch_t_test(&loss_pre, &loss_war),
    }
}

/// Computes the table. `n` is 10 in the paper.
pub fn compute(data: &StudyData, n: usize) -> Result<AsTable, AnalysisError> {
    let mut cov = Coverage::new();
    let top = top_ases(data, n);
    if top.len() < n {
        cov.note_sample(format!("top-{n} ranking ({} found)", top.len()), top.len());
    }
    let rows: Vec<AsChangeRow> = top.iter().map(|&asn| change_row(data, asn)).collect();
    for r in &rows {
        cov.note_sample(format!("AS{}", r.asn.0), r.tests_prewar.min(r.tests_wartime));
    }

    // Baseline fluctuations: the same computation over the two 2021
    // baselines; the paper keeps the worst (most extreme) value per metric.
    let mut baseline =
        BaselineFluctuation { d_counts: 0.0, d_tput: 0.0, d_rtt: 0.0, loss_ratio: 1.0 };
    let pre_map = tests_through(data, Period::BaselineJanFeb2021);
    let war_map = tests_through(data, Period::BaselineFebApr2021);
    for asn in &top {
        let pre = pre_map.get(asn).cloned().unwrap_or_default();
        let war = war_map.get(asn).cloned().unwrap_or_default();
        if pre.len() < 20 || war.len() < 20 {
            continue;
        }
        let mean = |rows: &[&Scamper1Row], f: fn(&Scamper1Row) -> f64| {
            rows.iter().map(|r| f(r)).sum::<f64>() / rows.len() as f64
        };
        let dc = (war.len() as f64 - pre.len() as f64) / pre.len() as f64;
        let dt = (mean(&war, |r| r.mean_tput_mbps) - mean(&pre, |r| r.mean_tput_mbps))
            / mean(&pre, |r| r.mean_tput_mbps);
        let dr = (mean(&war, |r| r.min_rtt_ms) - mean(&pre, |r| r.min_rtt_ms))
            / mean(&pre, |r| r.min_rtt_ms);
        let lr = mean(&war, |r| r.loss_rate) / mean(&pre, |r| r.loss_rate);
        if dc.abs() > baseline.d_counts.abs() {
            baseline.d_counts = dc;
        }
        if dt.abs() > baseline.d_tput.abs() {
            baseline.d_tput = dt;
        }
        if dr.abs() > baseline.d_rtt.abs() {
            baseline.d_rtt = dr;
        }
        if (lr - 1.0).abs() > (baseline.loss_ratio - 1.0).abs() {
            baseline.loss_ratio = lr;
        }
    }

    // Top-10 share of all 2022 tests.
    let total: usize = data.traces_in(Period::Prewar2022).count()
        + data.traces_in(Period::Wartime2022).count();
    cov.see(total);
    let through_top: usize = rows.iter().map(|r| r.tests_prewar + r.tests_wartime).sum();
    Ok(AsTable { rows, baseline, top10_share: through_top as f64 / total.max(1) as f64, coverage: cov })
}

impl StudyData {
    /// AS name helper for the table (None when unknown to the catalogue —
    /// StudyData carries no topology, so names come from the well-known
    /// list).
    pub fn name_of(&self, asn: Asn) -> Option<String> {
        use ndt_topology::asn::well_known as wk;
        let n = match asn {
            a if a == wk::KYIVSTAR => "Kyivstar",
            a if a == wk::UARNET => "UARNet",
            a if a == wk::KYIV_TELECOM => "Kyiv Telecom",
            a if a == wk::DATALINE => "Dataline",
            a if a == wk::EMPLOT => "Emplot LTd.",
            a if a == wk::VODAFONE_UKR => "Vodafone UKr",
            a if a == wk::TENET => "TeNeT",
            a if a == wk::UKR_TELECOM => "Ukr Telecom",
            a if a == wk::LANET => "Lanet",
            a if a == wk::SKIF => "SKIF ISP Ltd.",
            a if a == wk::HURRICANE_ELECTRIC => "Hurricane Electric",
            a if a == wk::COGENT => "Cogent Networks",
            a if a == wk::RETN => "RETN",
            a if a == wk::AS6663 => "Euroweb Romania",
            a if a == wk::UKRTELECOM_TRANSIT => "Ukrtelecom",
            a if a == wk::TRIOLAN => "Triolan",
            a if a == wk::DATAGROUP => "Datagroup",
            a if a == wk::AS199995 => "AS199995",
            _ => return None,
        };
        Some(n.to_string())
    }
}

impl AsTable {
    /// Row by ASN.
    pub fn row(&self, asn: Asn) -> Option<&AsChangeRow> {
        self.rows.iter().find(|r| r.asn == asn)
    }

    /// Whether a row's metric exceeds the baseline fluctuation (the paper's
    /// underline).
    pub fn exceeds_baseline_rtt(&self, row: &AsChangeRow) -> bool {
        row.d_rtt.abs() > self.baseline.d_rtt.abs()
    }

    /// Whether a row's loss ratio exceeds the baseline's.
    pub fn exceeds_baseline_loss(&self, row: &AsChangeRow) -> bool {
        (row.loss_ratio - 1.0).abs() > (self.baseline.loss_ratio - 1.0).abs()
    }

    /// Aligned text rendering in the paper's column order.
    pub fn render(&self) -> String {
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.asn.0.to_string(),
                    r.name.clone(),
                    pct(r.d_counts),
                    format!("{}{}", pct(r.d_tput), if r.tput_test.significant() { "*" } else { "" }),
                    format!("{}{}", pct(r.d_rtt), if r.rtt_test.significant() { "*" } else { "" }),
                    format!("{}{}", times(r.loss_ratio), if r.loss_test.significant() { "*" } else { "" }),
                ]
            })
            .collect();
        rows.push(vec![
            "".into(),
            "Baseline Fluctuations".into(),
            pct(self.baseline.d_counts),
            pct(self.baseline.d_tput),
            pct(self.baseline.d_rtt),
            times(self.baseline.loss_ratio),
        ]);
        let mut out = text_table(&["ASN", "Name", "dCounts", "dTPut", "dRTT", "dLoss"], &rows);
        out.push_str(&self.coverage.footer());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_support::shared_medium;
    use ndt_topology::asn::well_known as wk;
    use std::sync::OnceLock;

    fn table() -> &'static AsTable {
        static T: OnceLock<AsTable> = OnceLock::new();
        T.get_or_init(|| compute(shared_medium(), 10).expect("clean corpus computes"))
    }

    #[test]
    fn top10_contains_the_paper_ases() {
        let t = table();
        assert_eq!(t.rows.len(), 10);
        for asn in [wk::KYIVSTAR, wk::UARNET, wk::KYIV_TELECOM, wk::EMPLOT, wk::TENET] {
            assert!(t.row(asn).is_some(), "{asn} missing from top-10");
        }
    }

    #[test]
    fn kyivstar_loses_throughput_significantly() {
        let r = table().row(wk::KYIVSTAR).unwrap();
        assert!(r.d_tput < -0.15, "dTput = {}", r.d_tput);
        assert!(r.tput_test.significant());
        assert!(r.loss_ratio > 1.2, "loss ratio = {}", r.loss_ratio);
    }

    #[test]
    fn emplot_collapses_in_counts_with_huge_rtt() {
        let r = table().row(wk::EMPLOT).unwrap();
        assert!(r.d_counts < -0.6, "dCounts = {}", r.d_counts);
        assert!(r.d_rtt > 2.0, "dRTT = {}", r.d_rtt);
    }

    #[test]
    fn tenet_and_skif_are_spared() {
        // Paper: TeNeT 0.60x loss / +5.5% tput, SKIF 0.82x / +9.75% — both
        // ride out the war at or below baseline. Our TeNeT sits behind the
        // decaying AS6663 ingress, whose core loss leaks into its
        // through-AS means, so "spared" here means: far below the damaged
        // ASes and no throughput loss.
        let t = table();
        for asn in [wk::TENET, wk::SKIF] {
            let r = t.row(asn).unwrap();
            assert!(r.loss_ratio < 1.2, "{asn} loss ratio = {}", r.loss_ratio);
            assert!(r.d_tput > -0.05, "{asn} dTput = {}", r.d_tput);
            let kyivstar = t.row(wk::KYIVSTAR).unwrap();
            assert!(r.loss_ratio < kyivstar.loss_ratio, "{asn} not spared relative to Kyivstar");
        }
    }

    #[test]
    fn damage_is_heterogeneous_and_exceeds_baseline_for_most() {
        let t = table();
        let exceed_rtt = t.rows.iter().filter(|r| t.exceeds_baseline_rtt(r)).count();
        let exceed_loss = t.rows.iter().filter(|r| t.exceeds_baseline_loss(r)).count();
        assert!(exceed_rtt >= 5, "only {exceed_rtt} exceed baseline RTT fluctuation");
        assert!(exceed_loss >= 5, "only {exceed_loss} exceed baseline loss fluctuation");
    }

    #[test]
    fn top10_share_is_a_minority() {
        let t = table();
        assert!(
            (0.1..0.75).contains(&t.top10_share),
            "top-10 share = {} (paper: 25.6%)",
            t.top10_share
        );
    }

    #[test]
    fn render_includes_baseline_row() {
        let s = table().render();
        assert!(s.contains("Baseline Fluctuations"));
        assert!(s.contains("Kyivstar"));
    }
}
