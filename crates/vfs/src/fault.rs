//! Keyed, reproducible filesystem fault injection.
//!
//! [`FaultFs`] wraps another [`Vfs`] and decides, per operation, whether
//! to fail it — the same way `ndt-mlab`'s `FaultPlan` degrades the
//! *dataset*, an [`IoFaultPlan`] degrades the *storage layer*. Every
//! decision is a pure splitmix64 hash of:
//!
//! * the plan's `io_seed`,
//! * a domain separator per fault kind (so raising the EINTR rate never
//!   moves which writes tear),
//! * the file's identity — FNV-1a of its final path component, with any
//!   `.tmp.<pid>` suffix stripped so atomic-write temporaries key the
//!   same across processes, and
//! * a per-`(file, operation)` sequence number, so a retried operation
//!   draws a fresh coin (retries can heal, exactly like real storage).
//!
//! The injected failures and where they surface:
//!
//! * **short reads** — `read` fills a strict prefix of the buffer; legal
//!   POSIX behavior that `read_exact` discipline must absorb;
//! * **EINTR bursts** — `read`/`write`/`fsync`/`rename`/`remove` fail
//!   with `ErrorKind::Interrupted`, sometimes twice in a row; std's
//!   `read_exact`/`write_all` and the runner's `retry_io` absorb them;
//! * **ENOSPC** — `create`/`write` fail with the raw `ENOSPC` errno;
//!   permanent, so retry layers must *not* spin on it;
//! * **torn writes** — `write` persists a keyed prefix of the buffer and
//!   then errors, modeling a crash mid-`write(2)`; the atomic-write
//!   protocol must keep the destination untouched;
//! * **fsync failure** — `sync_all` errors after data may or may not
//!   have reached disk; treated as fatal for that artifact attempt;
//! * **ghost renames** — the rename *succeeds* but reports EINTR, so a
//!   naive retry observes the source missing and mistakes success for
//!   failure (the `rename_reliable` regression case);
//! * **bit rot** — an opened file's read stream has one keyed byte
//!   XOR-flipped at a keyed offset, consistently on every open: the
//!   on-disk file is untouched, but every reader of that file sees the
//!   same persistent corruption, modeling post-commit media decay.

use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::{RealFs, Vfs, VfsFile};
#[cfg(test)]
use crate::VfsHandle;

/// SplitMix64 finalizer — the workspace's standard keyed-coin hash,
/// matching `ndt-mlab::fault`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over bytes — file-name keys.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Domain separators so each fault kind has an independent coin stream.
mod domain {
    pub const READ: u64 = 0x10fa_0000_0000_0001;
    pub const WRITE: u64 = 0x10fa_0000_0000_0002;
    pub const FSYNC: u64 = 0x10fa_0000_0000_0003;
    pub const RENAME: u64 = 0x10fa_0000_0000_0004;
    pub const REMOVE: u64 = 0x10fa_0000_0000_0005;
    pub const CREATE: u64 = 0x10fa_0000_0000_0006;
    pub const EINTR: u64 = 0x10fa_0000_0000_0007;
    pub const SHORT: u64 = 0x10fa_0000_0000_0008;
    pub const ENOSPC: u64 = 0x10fa_0000_0000_0009;
    pub const TORN: u64 = 0x10fa_0000_0000_000a;
    pub const ROT: u64 = 0x10fa_0000_0000_000b;
    pub const GHOST: u64 = 0x10fa_0000_0000_000c;
    pub const VARIANT: u64 = 0x10fa_0000_0000_000d;
}

/// The raw `errno` for "no space left on device" on Linux.
/// (`io::ErrorKind::StorageFull` is not stable at this crate's MSRV.)
const ENOSPC_ERRNO: i32 = 28;

/// A deterministic plan of storage failures. All fields are independent
/// probabilities in `[0, 1]` except [`IoFaultPlan::io_seed`], which keys
/// the coin streams — mirror of `ndt-mlab::FaultPlan` for the I/O layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultPlan {
    /// Seed for the fault coin streams; independent of every simulation
    /// seed, so the same corpus can be stressed many different ways.
    pub io_seed: u64,
    /// P(a `read` call fills only a strict prefix of the buffer).
    pub short_read: f64,
    /// P(an I/O call fails with transient `EINTR`), sometimes as a
    /// burst of two consecutive failures on the same operation.
    pub eintr: f64,
    /// P(a `create`/`write` call fails with `ENOSPC`); nothing is
    /// written by a failing call.
    pub enospc: f64,
    /// P(a `write` call persists a keyed byte prefix and then errors).
    pub torn_write: f64,
    /// P(an `fsync` fails after data may have been buffered).
    pub fsync_fail: f64,
    /// P(a `rename` succeeds on disk but reports transient `EINTR`).
    pub rename_ghost: f64,
    /// P(an opened file's read stream carries one flipped byte at a
    /// keyed offset — the same flip on every open of that file).
    pub bit_rot: f64,
}

impl IoFaultPlan {
    /// No faults — byte-identical behavior to the real filesystem.
    pub const NONE: IoFaultPlan = IoFaultPlan {
        io_seed: 0,
        short_read: 0.0,
        eintr: 0.0,
        enospc: 0.0,
        torn_write: 0.0,
        fsync_fail: 0.0,
        rename_ghost: 0.0,
        bit_rot: 0.0,
    };

    /// Transient noise only — short reads, EINTR bursts, ghost renames.
    /// Everything here is absorbable by correct retry discipline, so a
    /// pipeline under `flaky` must still fully succeed.
    pub const FLAKY: IoFaultPlan = IoFaultPlan {
        io_seed: 0xA1,
        short_read: 0.20,
        eintr: 0.15,
        enospc: 0.0,
        torn_write: 0.0,
        fsync_fail: 0.0,
        rename_ghost: 0.20,
        bit_rot: 0.0,
    };

    /// Writes in trouble: torn writes, ENOSPC, failing fsyncs, plus the
    /// transient noise. Individual artifact attempts fail; the atomic
    /// protocol must keep every visible file complete and a rerun must
    /// converge.
    pub const TORN: IoFaultPlan = IoFaultPlan {
        io_seed: 0xB2,
        short_read: 0.10,
        eintr: 0.10,
        enospc: 0.04,
        torn_write: 0.06,
        fsync_fail: 0.04,
        rename_ghost: 0.10,
        bit_rot: 0.0,
    };

    /// Post-commit media decay: roughly a third of opened files read
    /// back with one flipped byte. Checksummed readers must quarantine,
    /// not crash.
    pub const ROT: IoFaultPlan = IoFaultPlan {
        io_seed: 0xC3,
        short_read: 0.0,
        eintr: 0.0,
        enospc: 0.0,
        torn_write: 0.0,
        fsync_fail: 0.0,
        rename_ghost: 0.0,
        bit_rot: 0.35,
    };

    /// Everything at once, at rates a robust pipeline should survive
    /// with degraded-but-correct output.
    pub const CHAOS: IoFaultPlan = IoFaultPlan {
        io_seed: 0xD4,
        short_read: 0.15,
        eintr: 0.10,
        enospc: 0.03,
        torn_write: 0.04,
        fsync_fail: 0.03,
        rename_ghost: 0.10,
        bit_rot: 0.10,
    };

    /// The built-in plans with their CLI names, in escalation order.
    pub const BUILTIN: [(&'static str, IoFaultPlan); 5] = [
        ("none", IoFaultPlan::NONE),
        ("flaky", IoFaultPlan::FLAKY),
        ("torn", IoFaultPlan::TORN),
        ("rot", IoFaultPlan::ROT),
        ("chaos", IoFaultPlan::CHAOS),
    ];

    /// Looks up a built-in plan by its CLI name.
    pub fn by_name(name: &str) -> Option<IoFaultPlan> {
        IoFaultPlan::BUILTIN.iter().find(|(n, _)| *n == name).map(|(_, p)| *p)
    }

    /// Whether this plan injects nothing (fast-path check; a `none` plan
    /// collapses [`VfsHandle::faulty`](crate::VfsHandle::faulty) to the
    /// real filesystem).
    pub fn is_none(&self) -> bool {
        self.short_read == 0.0
            && self.eintr == 0.0
            && self.enospc == 0.0
            && self.torn_write == 0.0
            && self.fsync_fail == 0.0
            && self.rename_ghost == 0.0
            && self.bit_rot == 0.0
    }

    /// One keyed draw: a 64-bit hash that is a pure function of
    /// `(io_seed, domain, key)`.
    fn draw(&self, domain: u64, key: u64) -> u64 {
        splitmix64(self.io_seed ^ splitmix64(domain ^ splitmix64(key)))
    }

    /// Converts a draw to a coin with probability `p`.
    fn hit(h: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl Default for IoFaultPlan {
    fn default() -> Self {
        IoFaultPlan::NONE
    }
}

/// The stable identity of a file under fault keying: FNV-1a of its final
/// path component with any `.tmp.<pid>` suffix stripped, so the same
/// logical file draws the same coins regardless of directory or process.
fn file_key(path: &Path) -> u64 {
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let base = match name.rfind(".tmp.") {
        Some(i)
            if !name[i + 5..].is_empty()
                && name[i + 5..].bytes().all(|b| b.is_ascii_digit()) =>
        {
            &name[..i + 4]
        }
        _ => name.as_str(),
    };
    fnv1a64(base.as_bytes())
}

/// Mutable fault-stream state shared by a [`FaultFs`] and its files.
#[derive(Debug, Default)]
struct FaultState {
    /// Per-`(file, domain)` operation counters.
    seq: BTreeMap<u64, u64>,
    /// Remaining forced-EINTR repeats per `(file, domain)` (burst tail).
    pending_eintr: BTreeMap<u64, u32>,
    /// Consecutive EINTRs injected per `(file, domain)` so far — the
    /// burst-bound enforcement counter (see [`MAX_EINTR_BURST`]).
    eintr_streak: BTreeMap<u64, u32>,
}

/// Hard ceiling on consecutive injected EINTRs per `(file, domain)`
/// site. EINTR is the one *guaranteed-transient* fault in every plan:
/// callers are entitled to absorb it with bounded retries (std's
/// `read_exact`/`write_all` loops, `retry_io`'s 3 attempts), so the
/// injector must never manufacture an infinite interruption storm —
/// that would be a different fault class, not EINTR.
const MAX_EINTR_BURST: u32 = 2;

/// A fault-injecting [`Vfs`] wrapping another implementation
/// (the real filesystem unless constructed with [`FaultFs::over`]).
#[derive(Debug)]
pub struct FaultFs {
    inner: Arc<dyn Vfs>,
    plan: IoFaultPlan,
    state: Arc<Mutex<FaultState>>,
}

fn eintr_err() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected EINTR")
}

fn enospc_err() -> io::Error {
    io::Error::from_raw_os_error(ENOSPC_ERRNO)
}

impl FaultFs {
    /// A fault layer over the real filesystem.
    pub fn new(plan: IoFaultPlan) -> Self {
        Self::over(Arc::new(RealFs), plan)
    }

    /// A fault layer over an arbitrary inner [`Vfs`].
    pub fn over(inner: Arc<dyn Vfs>, plan: IoFaultPlan) -> Self {
        Self { inner, plan, state: Arc::new(Mutex::new(FaultState::default())) }
    }

    /// The plan this layer injects.
    pub fn plan(&self) -> IoFaultPlan {
        self.plan
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A panic while holding this lock cannot corrupt the counters
        // (plain integer maps), so a poisoned lock is still usable.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Bumps and returns the operation index for `(file, domain)`.
    fn op_seq(&self, key: u64, domain: u64) -> u64 {
        let mut st = self.lock();
        let c = st.seq.entry(key ^ domain).or_insert(0);
        let n = *c;
        *c += 1;
        n
    }

    /// The transient-EINTR gate for one operation. Draws a fresh coin
    /// per `(file, domain, seq)`; a hit fails this call and may queue
    /// one forced repeat so retry loops see a burst, not a single blip.
    fn eintr_gate(&self, key: u64, domain: u64, seq: u64) -> io::Result<()> {
        if self.plan.eintr <= 0.0 {
            return Ok(());
        }
        let slot = key ^ domain;
        {
            let mut st = self.lock();
            // A streak at the ceiling must end: the retry lands, and the
            // next interruption (if any) starts a fresh burst.
            if st.eintr_streak.get(&slot).copied().unwrap_or(0) >= MAX_EINTR_BURST {
                st.eintr_streak.insert(slot, 0);
                st.pending_eintr.remove(&slot);
                return Ok(());
            }
            if let Some(p) = st.pending_eintr.get_mut(&slot) {
                if *p > 0 {
                    *p -= 1;
                    *st.eintr_streak.entry(slot).or_insert(0) += 1;
                    return Err(eintr_err());
                }
            }
        }
        let h = self.plan.draw(domain::EINTR ^ domain, key.wrapping_add(splitmix64(seq)));
        if IoFaultPlan::hit(h, self.plan.eintr) {
            let mut st = self.lock();
            *st.eintr_streak.entry(slot).or_insert(0) += 1;
            if (h >> 17) & 1 == 1 {
                st.pending_eintr.insert(slot, 1);
            }
            return Err(eintr_err());
        }
        self.lock().eintr_streak.insert(slot, 0);
        Ok(())
    }

    /// The persistent bit-rot decision for a file: `None` when clean,
    /// otherwise the flipped offset and XOR mask. Keyed by file identity
    /// only, so every open of the same file sees the same damage.
    fn rot_for(&self, key: u64, len: u64) -> Option<(u64, u8)> {
        if len == 0 || !IoFaultPlan::hit(self.plan.draw(domain::ROT, key), self.plan.bit_rot) {
            return None;
        }
        let h = self.plan.draw(domain::ROT ^ domain::VARIANT, key);
        let offset = h % len;
        let mask = 1u8 << ((h >> 37) % 8) as u32;
        Some((offset, mask))
    }
}

impl Vfs for FaultFs {
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let key = file_key(path);
        let rot = if self.plan.bit_rot > 0.0 {
            let len = self.inner.file_len(path).unwrap_or(0);
            self.rot_for(key, len)
        } else {
            None
        };
        let inner = self.inner.open(path)?;
        Ok(Box::new(FaultFile {
            inner,
            fs_plan: self.plan,
            state: Arc::clone(&self.state),
            key,
            pos: 0,
            rot,
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let key = file_key(path);
        let seq = self.op_seq(key, domain::CREATE);
        if IoFaultPlan::hit(
            self.plan.draw(domain::ENOSPC ^ domain::CREATE, key.wrapping_add(splitmix64(seq))),
            self.plan.enospc,
        ) {
            return Err(enospc_err());
        }
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultFile {
            inner,
            fs_plan: self.plan,
            state: Arc::clone(&self.state),
            key,
            pos: 0,
            rot: None,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        // Renames are keyed by the destination: that is the name whose
        // visibility the operation decides.
        let key = file_key(to);
        let seq = self.op_seq(key, domain::RENAME);
        self.eintr_gate(key, domain::RENAME, seq)?;
        if IoFaultPlan::hit(
            self.plan.draw(domain::GHOST, key.wrapping_add(splitmix64(seq))),
            self.plan.rename_ghost,
        ) {
            // Ghost success: the rename lands on disk but the caller is
            // told it was interrupted.
            self.inner.rename(from, to)?;
            return Err(eintr_err());
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let key = file_key(path);
        let seq = self.op_seq(key, domain::REMOVE);
        self.eintr_gate(key, domain::REMOVE, seq)?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_dir(path)
    }
}

/// An open file under fault injection. Tracks its own stream position so
/// bit rot stays anchored to a file *offset* across seeks.
struct FaultFile {
    inner: Box<dyn VfsFile>,
    fs_plan: IoFaultPlan,
    state: Arc<Mutex<FaultState>>,
    key: u64,
    pos: u64,
    rot: Option<(u64, u8)>,
}

impl FaultFile {
    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn op_seq(&self, domain: u64) -> u64 {
        let mut st = self.lock();
        let c = st.seq.entry(self.key ^ domain).or_insert(0);
        let n = *c;
        *c += 1;
        n
    }

    fn eintr_gate(&self, domain: u64, seq: u64) -> io::Result<()> {
        if self.fs_plan.eintr <= 0.0 {
            return Ok(());
        }
        let slot = self.key ^ domain;
        {
            let mut st = self.lock();
            // Same burst ceiling as the filesystem-level gate: a streak
            // at MAX_EINTR_BURST ends here, the retry lands.
            if st.eintr_streak.get(&slot).copied().unwrap_or(0) >= MAX_EINTR_BURST {
                st.eintr_streak.insert(slot, 0);
                st.pending_eintr.remove(&slot);
                return Ok(());
            }
            if let Some(p) = st.pending_eintr.get_mut(&slot) {
                if *p > 0 {
                    *p -= 1;
                    *st.eintr_streak.entry(slot).or_insert(0) += 1;
                    return Err(eintr_err());
                }
            }
        }
        let h = self
            .fs_plan
            .draw(domain::EINTR ^ domain, self.key.wrapping_add(splitmix64(seq)));
        if IoFaultPlan::hit(h, self.fs_plan.eintr) {
            let mut st = self.lock();
            *st.eintr_streak.entry(slot).or_insert(0) += 1;
            if (h >> 17) & 1 == 1 {
                st.pending_eintr.insert(slot, 1);
            }
            return Err(eintr_err());
        }
        self.lock().eintr_streak.insert(slot, 0);
        Ok(())
    }
}

impl Read for FaultFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let seq = self.op_seq(domain::READ);
        self.eintr_gate(domain::READ, seq)?;
        let mut want = buf.len();
        if want > 1 && self.fs_plan.short_read > 0.0 {
            let h = self
                .fs_plan
                .draw(domain::SHORT, self.key.wrapping_add(splitmix64(seq)));
            if IoFaultPlan::hit(h, self.fs_plan.short_read) {
                want = 1 + (splitmix64(h) % (want as u64 - 1)) as usize;
            }
        }
        let n = self.inner.read(&mut buf[..want])?;
        if let Some((offset, mask)) = self.rot {
            if offset >= self.pos && offset < self.pos + n as u64 {
                buf[(offset - self.pos) as usize] ^= mask;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let seq = self.op_seq(domain::WRITE);
        self.eintr_gate(domain::WRITE, seq)?;
        let salt = self.key.wrapping_add(splitmix64(seq));
        if IoFaultPlan::hit(
            self.fs_plan.draw(domain::ENOSPC, salt),
            self.fs_plan.enospc,
        ) {
            return Err(enospc_err());
        }
        if !buf.is_empty()
            && IoFaultPlan::hit(self.fs_plan.draw(domain::TORN, salt), self.fs_plan.torn_write)
        {
            // Persist a keyed strict prefix, then fail: a crash mid-write.
            let keep =
                (self.fs_plan.draw(domain::TORN ^ domain::VARIANT, salt) % buf.len() as u64)
                    as usize;
            if keep > 0 {
                self.inner.write_all(&buf[..keep])?;
                self.pos += keep as u64;
            }
            return Err(io::Error::other("injected torn write"));
        }
        let n = self.inner.write(buf)?;
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Seek for FaultFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let p = self.inner.seek(pos)?;
        self.pos = p;
        Ok(p)
    }
}

impl VfsFile for FaultFile {
    fn sync_all(&mut self) -> io::Result<()> {
        let seq = self.op_seq(domain::FSYNC);
        self.eintr_gate(domain::FSYNC, seq)?;
        if IoFaultPlan::hit(
            self.fs_plan
                .draw(domain::FSYNC, self.key.wrapping_add(splitmix64(seq))),
            self.fs_plan.fsync_fail,
        ) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("ndt-vfs-fault-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn by_name_resolves_all_builtins() {
        for (name, plan) in IoFaultPlan::BUILTIN {
            assert_eq!(IoFaultPlan::by_name(name), Some(plan));
        }
        assert_eq!(IoFaultPlan::by_name("meteor-strike"), None);
        assert!(IoFaultPlan::by_name("none").is_some_and(|p| p.is_none()));
        assert!(IoFaultPlan::by_name("chaos").is_some_and(|p| !p.is_none()));
    }

    #[test]
    fn short_reads_are_strict_prefixes_absorbed_by_read_exact() {
        let d = tmpdir("short");
        let path = d.join("data.bin");
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        fs::write(&path, &payload).expect("seed file");
        let vfs = VfsHandle::faulty(IoFaultPlan {
            io_seed: 7,
            short_read: 1.0,
            ..IoFaultPlan::NONE
        });
        let mut f = vfs.open(&path).expect("open");
        let mut buf = vec![0u8; 1024];
        let n = f.read(&mut buf).expect("read");
        assert!(n >= 1 && n < 1024, "short read returned {n}");
        // read_exact discipline still recovers the full contents.
        let mut f = vfs.open(&path).expect("reopen");
        let mut all = vec![0u8; payload.len()];
        f.read_exact(&mut all).expect("read_exact absorbs short reads");
        assert_eq!(all, payload);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn eintr_bursts_are_transient_and_bounded() {
        let d = tmpdir("eintr");
        let path = d.join("data.bin");
        fs::write(&path, vec![9u8; 64]).expect("seed file");
        let vfs =
            VfsHandle::faulty(IoFaultPlan { io_seed: 3, eintr: 0.5, ..IoFaultPlan::NONE });
        // Every injected failure heals within a bounded number of raw
        // retries (burst length <= 2), and std read_exact absorbs them.
        let mut f = vfs.open(&path).expect("open");
        let mut buf = [0u8; 64];
        f.read_exact(&mut buf).expect("read_exact ignores EINTR");
        assert_eq!(buf, [9u8; 64]);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn eintr_storms_are_hard_bounded_per_site() {
        // Worst case — every roll wants an interruption. The gate must
        // still cap consecutive EINTRs at MAX_EINTR_BURST so bounded
        // retry disciplines (3 attempts) are provably sufficient.
        let d = tmpdir("eintr-storm");
        let path = d.join("data.bin");
        fs::write(&path, vec![7u8; 32]).expect("seed file");
        let vfs =
            VfsHandle::faulty(IoFaultPlan { io_seed: 13, eintr: 1.0, ..IoFaultPlan::NONE });
        let mut f = vfs.open(&path).expect("open");
        let mut buf = [0u8; 32];
        let (mut read, mut streak, mut longest) = (0usize, 0u32, 0u32);
        while read < buf.len() {
            match f.read(&mut buf[read..]) {
                Ok(n) => {
                    assert!(n > 0, "no EOF before the file is consumed");
                    read += n;
                    streak = 0;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    streak += 1;
                    longest = longest.max(streak);
                    assert!(streak <= 2, "EINTR burst exceeded the bound");
                }
                Err(e) => panic!("only EINTR is injected here: {e}"),
            }
        }
        assert_eq!(buf, [7u8; 32]);
        assert!(longest == 2, "at probability 1.0 the full burst must occur");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_write_persists_a_strict_prefix_then_errors() {
        let d = tmpdir("torn");
        let path = d.join("out.bin");
        let vfs = VfsHandle::faulty(IoFaultPlan {
            io_seed: 11,
            torn_write: 1.0,
            ..IoFaultPlan::NONE
        });
        let payload = vec![0xABu8; 512];
        let mut f = vfs.create(&path).expect("create");
        let err = f.write(&payload).expect_err("torn write must error");
        assert_eq!(err.kind(), io::ErrorKind::Other);
        drop(f);
        let on_disk = fs::read(&path).expect("read back");
        assert!(on_disk.len() < payload.len(), "wrote {} bytes", on_disk.len());
        assert_eq!(on_disk, payload[..on_disk.len()], "prefix only");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn enospc_is_permanent_and_writes_nothing() {
        let d = tmpdir("enospc");
        let path = d.join("out.bin");
        let vfs = VfsHandle::faulty(IoFaultPlan {
            io_seed: 13,
            enospc: 1.0,
            ..IoFaultPlan::NONE
        });
        let err = match vfs.create(&path) {
            Err(e) => e,
            Ok(_) => panic!("create must hit ENOSPC"),
        };
        assert_eq!(err.raw_os_error(), Some(ENOSPC_ERRNO));
        assert!(!path.exists(), "failed create must not leave a file");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn fsync_failure_is_injected() {
        let d = tmpdir("fsync");
        let path = d.join("out.bin");
        let vfs = VfsHandle::faulty(IoFaultPlan {
            io_seed: 17,
            fsync_fail: 1.0,
            ..IoFaultPlan::NONE
        });
        let mut f = vfs.create(&path).expect("create");
        f.write_all(b"data").expect("write");
        assert!(f.sync_all().is_err(), "fsync must fail");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn ghost_rename_lands_but_reports_eintr() {
        let d = tmpdir("ghost");
        let from = d.join("a");
        let to = d.join("b");
        fs::write(&from, b"x").expect("seed");
        let vfs = VfsHandle::faulty(IoFaultPlan {
            io_seed: 19,
            rename_ghost: 1.0,
            ..IoFaultPlan::NONE
        });
        let err = vfs.rename(&from, &to).expect_err("ghost reports failure");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(!from.exists() && to.exists(), "rename actually happened");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn bit_rot_is_consistent_across_opens_and_leaves_disk_clean() {
        let d = tmpdir("rot");
        let path = d.join("data.bin");
        let payload = vec![0u8; 256];
        fs::write(&path, &payload).expect("seed");
        let vfs = VfsHandle::faulty(IoFaultPlan {
            io_seed: 23,
            bit_rot: 1.0,
            ..IoFaultPlan::NONE
        });
        let read_all = || {
            let mut f = vfs.open(&path).expect("open");
            let mut buf = vec![0u8; payload.len()];
            f.read_exact(&mut buf).expect("read");
            buf
        };
        let a = read_all();
        let b = read_all();
        assert_eq!(a, b, "rot must be identical on every open");
        let flipped: Vec<usize> = a.iter().enumerate().filter(|(_, &v)| v != 0).map(|(i, _)| i).collect();
        assert_eq!(flipped.len(), 1, "exactly one rotten byte, got {flipped:?}");
        assert_eq!(fs::read(&path).expect("reread"), payload, "disk untouched");
        // Rot survives seeking back over the damaged offset.
        let mut f = vfs.open(&path).expect("open");
        let mut buf = vec![0u8; payload.len()];
        f.read_exact(&mut buf).expect("read");
        f.seek(SeekFrom::Start(0)).expect("rewind");
        let mut again = vec![0u8; payload.len()];
        f.read_exact(&mut again).expect("reread");
        assert_eq!(buf, again, "rot anchored to file offset");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn temp_suffix_is_stripped_from_file_identity() {
        let a = file_key(Path::new("/x/.manifest.txt.tmp.1234"));
        let b = file_key(Path::new("/y/.manifest.txt.tmp.99"));
        let c = file_key(Path::new("/x/.manifest.txt.tmp.v2"));
        assert_eq!(a, b, "pid suffix must not change identity");
        assert_ne!(a, c, "non-numeric suffix is part of the name");
        assert_eq!(
            file_key(Path::new("/p/shard-000-027-abc.unified.ndts")),
            file_key(Path::new("/q/shard-000-027-abc.unified.ndts")),
            "directory must not change identity"
        );
    }

    #[test]
    fn fault_kinds_draw_independent_streams() {
        let plan = IoFaultPlan {
            io_seed: 29,
            enospc: 0.5,
            torn_write: 0.5,
            ..IoFaultPlan::NONE
        };
        let mut enospc_hits = 0;
        let mut torn_hits = 0;
        let mut differs = false;
        for i in 0..512u64 {
            let salt = splitmix64(i);
            let e = IoFaultPlan::hit(plan.draw(domain::ENOSPC, salt), plan.enospc);
            let t = IoFaultPlan::hit(plan.draw(domain::TORN, salt), plan.torn_write);
            enospc_hits += e as usize;
            torn_hits += t as usize;
            differs |= e != t;
        }
        assert!(differs, "fault kinds share a coin stream");
        for (name, hits) in [("enospc", enospc_hits), ("torn", torn_hits)] {
            let rate = hits as f64 / 512.0;
            assert!((rate - 0.5).abs() < 0.1, "{name} rate = {rate}");
        }
    }

    #[test]
    fn same_plan_replays_identical_outcomes() {
        let d = tmpdir("replay");
        let path = d.join("data.bin");
        fs::write(&path, vec![5u8; 1024]).expect("seed");
        let run = || {
            let vfs = VfsHandle::faulty(IoFaultPlan {
                io_seed: 31,
                short_read: 0.5,
                eintr: 0.3,
                ..IoFaultPlan::NONE
            });
            let mut f = vfs.open(&path).expect("open");
            let mut log = Vec::new();
            let mut buf = [0u8; 64];
            for _ in 0..40 {
                match f.read(&mut buf) {
                    Ok(n) => log.push(n as i64),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => log.push(-1),
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            log
        };
        assert_eq!(run(), run(), "fault stream must replay bit-identically");
        let _ = fs::remove_dir_all(&d);
    }
}
