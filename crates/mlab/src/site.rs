//! M-Lab sites and the geographic load balancer.

use ndt_geo::{haversine_km, CityId, LatLon};
use ndt_topology::{Asn, BuiltTopology, Ipv4Addr};
use serde::{Deserialize, Serialize};

/// Index of a site in the platform's site list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u16);

/// One M-Lab site: a measurement server inside a hosting AS at a metro.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    pub id: SiteId,
    /// Site name: metro slug + index, e.g. "warsaw02".
    pub name: String,
    pub metro: &'static str,
    pub country: &'static str,
    pub loc: LatLon,
    pub host_asn: Asn,
    pub server_ip: Ipv4Addr,
}

/// The platform's site list plus nearest-metro dispatch.
///
/// §3: "a load balancing service directs each client to a measurement site
/// that is geographically nearest to them". Within the nearest metro a
/// client is *pinned* to one of the metro's sites by a stable hash of its
/// address, so repeated tests form a stable (client, server) connection —
/// the unit of the paper's path-diversity analysis.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    sites: Vec<Site>,
    /// Site indices grouped by metro, in site order — the dispatch set a
    /// client is pinned into once its nearest metro is known. Built once so
    /// `site_for` never allocates.
    metro_groups: Vec<(&'static str, Vec<u16>)>,
}

impl LoadBalancer {
    /// Instantiates all 210 sites from the built topology's hosting metros.
    pub fn new(bt: &BuiltTopology) -> Self {
        let mut sites = Vec::new();
        for host in &bt.mlab_hosts {
            for k in 0..host.sites {
                let id = SiteId(sites.len() as u16);
                let prefix = bt.prefixes_by_as[&host.asn];
                sites.push(Site {
                    id,
                    name: format!("{}{:02}", metro_slug(host.metro), k + 1),
                    metro: host.metro,
                    country: host.country,
                    loc: host.loc,
                    host_asn: host.asn,
                    // Server addresses sit above the router space.
                    server_ip: prefix.nth(100 + k as u64),
                });
            }
        }
        let mut metro_groups: Vec<(&'static str, Vec<u16>)> = Vec::new();
        for (i, s) in sites.iter().enumerate() {
            match metro_groups.iter_mut().find(|(m, _)| *m == s.metro) {
                Some((_, group)) => group.push(i as u16),
                None => metro_groups.push((s.metro, vec![i as u16])),
            }
        }
        Self { sites, metro_groups }
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// The site a client at `loc` with address `client_ip` is dispatched to.
    pub fn site_for(&self, loc: LatLon, client_ip: Ipv4Addr) -> &Site {
        // Single pass, one haversine per site. `<=` keeps the *last* minimum,
        // matching `Iterator::min_by`'s tie-break (co-located sites tie).
        let mut nearest_metro = "";
        let mut best = f64::INFINITY;
        for s in &self.sites {
            let d = haversine_km(s.loc, loc);
            if d <= best {
                best = d;
                nearest_metro = s.metro;
            }
        }
        let (_, metro_sites) = self
            .metro_groups
            .iter()
            .find(|(m, _)| *m == nearest_metro)
            .expect("platform has sites");
        // Stable per-client pinning within the metro.
        let h = (client_ip.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.sites[metro_sites[(h % metro_sites.len() as u64) as usize] as usize]
    }

    /// Dispatch for a client in a catalogue city.
    pub fn site_for_city(&self, city: CityId, client_ip: Ipv4Addr) -> &Site {
        self.site_for(city.get().loc, client_ip)
    }
}

/// Lowercased metro slug ("Sao Paulo" → "saopaulo") — unique per metro,
/// unlike airport-style three-letter codes (Chisinau/Chicago collide).
fn metro_slug(metro: &str) -> String {
    metro.chars().filter(|c| c.is_ascii_alphabetic()).collect::<String>().to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndt_geo::city::city_by_name;
    use ndt_topology::{build_topology, TopologyConfig};

    fn lb() -> LoadBalancer {
        LoadBalancer::new(&build_topology(&TopologyConfig::default()))
    }

    #[test]
    fn instantiates_210_sites() {
        let lb = lb();
        assert_eq!(lb.sites().len(), 210);
        // Names unique.
        let mut names: Vec<&str> = lb.sites().iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 210);
    }

    #[test]
    fn ukrainian_clients_go_to_nearby_europe() {
        let lb = lb();
        let (kyiv, info) = city_by_name("Kyiv").unwrap();
        let site = lb.site_for_city(kyiv, Ipv4Addr(12345));
        assert!(
            haversine_km(site.loc, info.loc) < 900.0,
            "Kyiv dispatched to {} ({} km away)",
            site.metro,
            haversine_km(site.loc, info.loc)
        );
        assert_ne!(site.country, "UA");
        assert_ne!(site.country, "RU");
    }

    #[test]
    fn pinning_is_stable_per_client() {
        let lb = lb();
        let (lviv, _) = city_by_name("Lviv").unwrap();
        let a1 = lb.site_for_city(lviv, Ipv4Addr(1)).id;
        let a2 = lb.site_for_city(lviv, Ipv4Addr(1)).id;
        assert_eq!(a1, a2);
        // Different clients in a multi-site metro spread across sites.
        let distinct: std::collections::HashSet<_> =
            (0..64u32).map(|i| lb.site_for_city(lviv, Ipv4Addr(i)).id).collect();
        assert!(distinct.len() > 1, "no spreading across metro sites");
        // But all within one metro.
        let metros: std::collections::HashSet<_> =
            (0..64u32).map(|i| lb.site_for_city(lviv, Ipv4Addr(i)).metro).collect();
        assert_eq!(metros.len(), 1);
    }

    #[test]
    fn server_ips_belong_to_host_as() {
        let bt = build_topology(&TopologyConfig::default());
        let lb = LoadBalancer::new(&bt);
        for s in lb.sites().iter().take(20) {
            assert_eq!(bt.topology.prefixes.lookup(s.server_ip), Some(s.host_asn));
        }
    }
}
