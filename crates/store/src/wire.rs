//! Little-endian wire primitives — the workspace's single binary-encoding
//! implementation.
//!
//! This module started life as `ndt-mlab::codec::wire` and moved here when
//! the columnar store landed, so the dataset codec, the runner's
//! checkpoint container and the store's page encodings all share one
//! bounds-checked [`Reader`], one set of `put_*` writers, one FNV-1a and
//! one varint. `ndt-mlab::codec` re-exports it under the old path.
//!
//! Two properties every consumer relies on:
//!
//! * **exact float transport** — `f64` values travel as their IEEE-754 bit
//!   patterns ([`put_f64`] / [`Reader::f64`]), so NaN payloads, infinities
//!   and `-0.0` round-trip bit-for-bit, never through text formatting;
//! * **panic-free decoding** — every read is bounds-checked and surfaces a
//!   [`CodecError`] on torn or corrupt input.

/// Why a byte buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field named here was complete.
    Truncated(&'static str),
    /// The buffer does not start with the expected magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// A decoded discriminant or length was out of range.
    InvalidValue { what: &'static str, value: u64 },
    /// Bytes were left over after the last declared row.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated(what) => write!(f, "truncated input at {what}"),
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::InvalidValue { what, value } => {
                write!(f, "invalid {what} value {value}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after last row"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over an input buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.bytes(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, CodecError> {
        let b = self.bytes(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        Ok(self.u64(what)? as i64)
    }

    /// Reads an `f64` as its exact bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.bytes(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::InvalidValue { what, value: len as u64 })
    }

    /// Reads an LEB128 unsigned varint (at most 10 bytes for a `u64`).
    pub fn uvarint(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8(what)?;
            let low = (b & 0x7f) as u64;
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(CodecError::InvalidValue { what, value: low });
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn ivarint(&mut self, what: &'static str) -> Result<i64, CodecError> {
        Ok(unzigzag(self.uvarint(what)?))
    }
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, v as u64);
}

/// Appends an `f64` as its exact bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends an LEB128 unsigned varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

/// Encoded byte length of an unsigned varint.
pub fn uvarint_len(v: u64) -> usize {
    match v {
        0 => 1,
        _ => (70 - v.leading_zeros() as usize) / 7,
    }
}

/// Zigzag maps signed to unsigned so small-magnitude deltas of either sign
/// encode short: 0→0, -1→1, 1→2, -2→3, …
pub fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// FNV-1a over a byte buffer — the workspace's checksum for checkpoint
/// and store payloads.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(FNV_OFFSET_BASIS, bytes)
}

/// FNV-1a initial state, for streaming use with [`fnv1a64_extend`].
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds more bytes into a running FNV-1a state.
pub fn fnv1a64_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrips_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            (1 << 63) - 1,
            1 << 63,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(buf.len(), uvarint_len(v), "length fn disagrees for {v}");
            let mut r = Reader::new(&buf);
            assert_eq!(r.uvarint("v").expect("decodes"), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn uvarint_rejects_overlong_and_truncated() {
        // 11 continuation bytes would shift past 64 bits.
        let overlong = [0xffu8; 11];
        assert!(matches!(
            Reader::new(&overlong).uvarint("v"),
            Err(CodecError::InvalidValue { .. })
        ));
        // A continuation bit with nothing after it is a truncation.
        assert_eq!(Reader::new(&[0x80]).uvarint("v"), Err(CodecError::Truncated("v")));
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, i64::MIN + 1] {
            assert_eq!(unzigzag(zigzag(v)), v, "zigzag broke {v}");
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(Reader::new(&buf).ivarint("v"), Ok(v));
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn streaming_fnv_matches_one_shot() {
        let data = b"the quick brown fox";
        let mut h = FNV_OFFSET_BASIS;
        for chunk in data.chunks(3) {
            h = fnv1a64_extend(h, chunk);
        }
        assert_eq!(h, fnv1a64(data));
    }

    #[test]
    fn f64_bits_roundtrip_exactly() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1.5e-300] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let back = Reader::new(&buf).f64("v").expect("decodes");
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }
}
