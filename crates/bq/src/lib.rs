//! # ndt-bq
//!
//! A small in-memory columnar analytic store, standing in for Google
//! BigQuery in the `ukraine-ndt` reproduction of *"The Ukrainian Internet
//! Under Attack: an NDT Perspective"* (IMC '22).
//!
//! The paper's methodology reads two BigQuery tables —
//! `ndt.unified_download` and `ndt.scamper1` — and reduces them with
//! filters, group-bys and aggregates. This crate provides exactly that
//! surface so the analysis code in `ndt-analysis` reads like the paper's
//! method section instead of ad-hoc loops:
//!
//! ```
//! use ndt_bq::{ColType, Table, Value};
//!
//! let mut t = Table::new("ndt.unified_download", &[
//!     ("day", ColType::Int),
//!     ("oblast", ColType::Str),
//!     ("tput", ColType::Float),
//! ]);
//! t.push(vec![Value::Int(419), Value::from("Kiev City"), Value::Float(50.6)]);
//! t.push(vec![Value::Int(419), Value::from("L'viv"), Value::Float(37.2)]);
//!
//! let kyiv_mean = t.query()
//!     .filter_eq("oblast", &Value::from("Kiev City"))
//!     .mean("tput");
//! assert!((kyiv_mean - 50.6).abs() < 1e-9);
//! ```
//!
//! Tables are typed, columns are nullable, and queries are index sets over a
//! base table — cheap to fork, group and intersect. Aggregates cover what
//! the paper uses (count, sum, mean, median, std, min, max); anything more
//! sophisticated (Welch's t-test, histograms) consumes extracted vectors via
//! `ndt-stats`.

pub mod error;
pub mod query;
pub mod table;
pub mod value;
pub mod vectorized;

pub use error::BqError;
pub use query::Query;
pub use table::{ColType, Column, DictColumn, Table, NULL_CODE};
pub use value::Value;
