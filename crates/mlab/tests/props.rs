//! Property-based tests for the platform simulator.

use ndt_mlab::client::{ClientPool, ClientPoolConfig};
use ndt_mlab::{LoadBalancer, SimConfig, Simulator};
use ndt_topology::{build_topology, TopologyConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn built() -> &'static ndt_topology::BuiltTopology {
    static B: OnceLock<ndt_topology::BuiltTopology> = OnceLock::new();
    B.get_or_init(|| build_topology(&TopologyConfig::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any client population is structurally valid: unique IPs that resolve
    /// to the client's AS, positive rates, edge characteristics in range.
    #[test]
    fn client_pools_are_valid(seed in 0u64..500, n in 500usize..3_000) {
        let bt = built();
        let cfg = ClientPoolConfig { n_clients: n, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = ClientPool::generate(bt, &cfg, &mut rng);
        prop_assert!(!pool.is_empty());
        let mut ips: Vec<u32> = pool.clients().iter().map(|c| c.ip.0).collect();
        ips.sort_unstable();
        let len = ips.len();
        ips.dedup();
        prop_assert_eq!(ips.len(), len, "duplicate IPs");
        for c in pool.clients().iter().take(200) {
            prop_assert_eq!(bt.topology.prefixes.lookup(c.ip), Some(c.asn));
            prop_assert!(c.daily_rate > 0.0);
            prop_assert!(c.access_mbps >= 1.0 && c.access_mbps <= 1_000.0);
            prop_assert!(c.edge_loss > 0.0 && c.edge_loss < 0.5);
            prop_assert!(c.war_exposure >= 0.2 && c.war_exposure <= 4.0);
            prop_assert_eq!(c.city.get().oblast, c.oblast);
        }
        // Total expected volume matches the config target.
        let daily: f64 = pool.clients().iter().map(|c| c.daily_rate).sum();
        prop_assert!((daily - cfg.daily_raw_tests).abs() < 1.0);
    }

    /// The load balancer always dispatches Ukrainian cities to nearby
    /// non-UA/non-RU sites, deterministically per client.
    #[test]
    fn load_balancer_invariants(city_idx in 0usize..33, ip in 0u32..100_000) {
        let lb = LoadBalancer::new(built());
        let (cid, city) = ndt_geo::city::all_cities().nth(city_idx).expect("city");
        let ip = ndt_topology::Ipv4Addr(ip);
        let s1 = lb.site_for_city(cid, ip);
        let s2 = lb.site_for_city(cid, ip);
        prop_assert_eq!(s1.id, s2.id);
        prop_assert!(s1.country != "UA" && s1.country != "RU");
        prop_assert!(ndt_geo::haversine_km(s1.loc, city.loc) < 1_500.0, "site {} too far", s1.metro);
    }
}

/// Tiny-scale end-to-end run: every published row is internally consistent.
#[test]
fn simulated_rows_are_consistent() {
    let mut sim = Simulator::new(SimConfig { scale: 0.01, seed: 31, ..SimConfig::default() });
    let bt_catalog_is_ua = {
        let catalog = sim.built().catalog().clone();
        move |asn| catalog.is_ukrainian(asn)
    };
    let ds = sim.run();
    assert!(!ds.traces.is_empty());
    for r in &ds.traces {
        assert!(r.as_path.len() >= 2, "degenerate AS path");
        // Path ends in Ukraine, starts abroad.
        assert!(bt_catalog_is_ua(*r.as_path.last().unwrap()));
        assert!(!bt_catalog_is_ua(r.as_path[0]));
        // Border pair is on the path and correctly oriented.
        let (b, u) = r.border.expect("border crossing");
        assert!(!bt_catalog_is_ua(b) && bt_catalog_is_ua(u));
        assert!(r.as_path.windows(2).any(|w| w[0] == b && w[1] == u));
        assert!(r.min_rtt_ms > 0.0 && r.min_rtt_ms < 1_000.0);
        assert!(r.mean_tput_mbps > 0.0 && r.mean_tput_mbps <= 1_000.0);
    }
    for r in &ds.ndt {
        // Unified rows' ASN annotation matches the address plan.
        assert_eq!(sim.built().topology.prefixes.lookup(r.client_ip), Some(r.client_asn));
        if r.city.is_some() {
            assert!(r.oblast.is_some(), "city label implies region label");
        }
    }
}

proptest! {
    /// Truncated sidecar traces are strict, loop-free hop prefixes: the
    /// fault layer can shorten an AS path but can never fabricate a loop
    /// or reorder hops.
    #[test]
    fn truncated_traces_are_loop_free_prefixes(
        path_len in 2usize..12,
        seed in 0u64..200,
        client_ip in 0u32..50_000,
        day in 0i64..108,
        test_index in 0u64..40,
    ) {
        use ndt_mlab::fault::{truncate_as_path, FaultPlan};
        use ndt_topology::Asn;

        // A loop-free path: strictly increasing ASNs.
        let path: Vec<Asn> = (0..path_len as u32).map(|i| Asn(64_000 + i)).collect();
        let plan = FaultPlan { fault_seed: seed, sidecar_truncation: 1.0, ..FaultPlan::NONE };
        let keep = plan
            .sidecar_truncated_len(client_ip, day, test_index, path.len())
            .expect("probability 1 must truncate");
        prop_assert!((1..path.len()).contains(&keep), "keep = {keep} of {}", path.len());
        let truncated = truncate_as_path(&path, keep);
        prop_assert_eq!(&truncated[..], &path[..keep], "not a prefix");
        let mut seen = std::collections::HashSet::new();
        prop_assert!(truncated.iter().all(|a| seen.insert(a.0)), "loop fabricated");
        // Determinism: the same key always truncates at the same hop.
        prop_assert_eq!(
            plan.sidecar_truncated_len(client_ip, day, test_index, path.len()),
            Some(keep)
        );
    }
}
