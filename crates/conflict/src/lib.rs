//! # ndt-conflict
//!
//! Wartime scenario model for the `ukraine-ndt` reproduction of *"The
//! Ukrainian Internet Under Attack: an NDT Perspective"* (IMC '22).
//!
//! The paper's analyses slice a 108-day window in 2022 (54 prewar days, 54
//! wartime days) against the same window in 2021, and explain what they see
//! with the military narrative of §2: direct assault on the Northern,
//! Eastern and Southern fronts, the recapture of the Kyiv axis on April 3,
//! the siege of Mariupol from March 1, the mass shelling of Kharkiv around
//! March 14, the nationwide Ukrtelecom/Triolan outages of March 10, and the
//! westward flight of refugees towards Lviv.
//!
//! This crate turns that narrative into a deterministic generative model.
//! Since the `ndt-scenario` refactor, every model here evaluates a
//! [`ndt_scenario::ScenarioSpec`] rather than hardcoded constants — the
//! built-in `historical` spec reproduces the paper's curves bit for bit,
//! and the spec-parameterized entry points (`*_for`, [`damage::DamageModel`],
//! [`DisplacementModel::for_scenario`]) open the counterfactual and related-work
//! scenarios:
//!
//! * [`calendar`] — re-exported from `ndt-scenario`: study windows, period
//!   taxonomy, day index anchored at 2021-01-01;
//! * [`events`] — the dated events the paper cites, as machine-readable
//!   structs the platform simulator consumes; spec-driven via
//!   [`events::outages_for`];
//! * [`intensity`](mod@intensity) — per-oblast daily conflict-intensity curves shaped by
//!   a spec's front curves and oblast overrides;
//! * [`damage`] — per-oblast and per-AS wartime damage profiles, calibrated
//!   against the paper's own Table 4 and Table 3 ratios (we must reproduce
//!   *their* war, so their measured ratios are the honest calibration
//!   source), modulated over time by the intensity curves; plus the border
//!   dynamics behind Figures 5 and 6 (Cogent fade-out, AS6663 decay),
//!   generalized to spec transit rules (flaps, permanent re-homing);
//! * [`displacement`] — per-city activity multipliers (Mariupol collapse,
//!   Kharkiv exodus, Lviv influx) and the test-when-it-breaks curiosity
//!   spikes visible in Figure 2a, driven by a spec's curves and spike rules.

pub use ndt_scenario::calendar;
pub mod damage;
pub mod displacement;
pub mod events;
pub mod intensity;

pub use calendar::{Date, Period, DAYS_PER_PERIOD};
pub use damage::{
    as_profile, border_damage, border_damage_for, oblast_profile, BorderDamage, DamageModel,
    DamageProfile,
};
pub use displacement::DisplacementModel;
pub use events::{key_events, outages_for, outages_on, Event, EventKind, OutageEvent};
pub use intensity::{damage_scale, intensity, intensity_for};
