//! # ndt-bench
//!
//! Criterion benchmark harness for the `ukraine-ndt` reproduction. Each
//! table and figure of the paper has a bench target that regenerates it
//! (workload + analysis), and a set of ablation benches covers the design
//! choices called out in `DESIGN.md` (BBR vs CUBIC response, routing under
//! failure, geolocation error model).
//!
//! The shared corpus is generated once per process at a reduced scale via
//! [`shared_data`]; generation itself is benchmarked separately in the
//! `generation` bench.

use ndt_analysis::StudyData;
use ndt_mlab::SimConfig;
use std::sync::OnceLock;

/// Volume scale used by the analysis benches: large enough that every
/// experiment has meaningful input, small enough to keep bench startup
/// inside seconds.
pub const BENCH_SCALE: f64 = 0.08;

/// The corpus shared by the analysis benches (generated once per process).
pub fn shared_data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| {
        StudyData::generate(SimConfig { scale: BENCH_SCALE, seed: 1_914, ..SimConfig::default() })
    })
}
