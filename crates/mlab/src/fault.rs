//! Deterministic fault injection for the measurement platform.
//!
//! Real measurement infrastructure degrades in ways the simulator's clean
//! output never shows: sites go down for maintenance, scamper sidecars fail
//! to launch or die mid-trace, pipeline bugs corrupt rows, MaxMind loses
//! coverage, and whole ingestion partitions vanish. A [`FaultPlan`] layers
//! those failures onto a run *without perturbing the underlying
//! simulation*: every fault decision is a pure hash of
//! `(fault_seed, fault kind, row identity)`, never a draw from the
//! simulation's RNG streams. Consequences:
//!
//! * the same `(seed, plan)` pair is bit-for-bit reproducible at any thread
//!   count, like the base simulator;
//! * two runs that differ only in the plan produce the *same underlying
//!   tests* — the faulted dataset is a strict degradation of the clean one,
//!   so analyses can be compared row-for-row against ground truth;
//! * fault kinds are independent: raising sidecar loss never moves which
//!   rows get corrupted.
//!
//! The built-in plans (`light`, `moderate`, `severe`, `sidecar-blackout`)
//! give the fault-tolerance suite and the `--faults` CLI flag a shared
//! vocabulary of escalating degradation.

use ndt_topology::Asn;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer — the workspace's standard keyed-coin hash.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Domain separators so each fault kind has an independent coin stream.
mod domain {
    pub const SITE_OUTAGE: u64 = 0xfa01_7000_0000_0001;
    pub const DAY_LOST: u64 = 0xfa01_7000_0000_0002;
    pub const SIDECAR_LOSS: u64 = 0xfa01_7000_0000_0003;
    pub const SIDECAR_TRUNC: u64 = 0xfa01_7000_0000_0004;
    pub const CORRUPT: u64 = 0xfa01_7000_0000_0005;
    pub const GEO_FAIL: u64 = 0xfa01_7000_0000_0006;
    pub const VARIANT: u64 = 0xfa01_7000_0000_0007;
}

/// How a corrupted `unified_download` row is mangled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Throughput becomes `NaN` (a failed TCP_INFO read).
    NanThroughput,
    /// Throughput becomes its own negation (a sign-flip pipeline bug).
    NegativeThroughput,
    /// Minimum RTT becomes `NaN`.
    NanRtt,
    /// Loss rate becomes `NaN`.
    NanLoss,
    /// Geo annotation (oblast and city) nulled out.
    NullGeo,
}

/// A deterministic plan of platform failures, applied on top of a
/// simulation run. All fields are independent probabilities in `[0, 1]`
/// except [`FaultPlan::fault_seed`], which keys the coin streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault coin streams — independent of `SimConfig::seed`,
    /// so the same dataset can be degraded in many different ways.
    pub fault_seed: u64,
    /// P(a site is down for a whole day) — maintenance windows and site
    /// outages. Tests load-balanced to a down site never complete.
    pub site_outage: f64,
    /// P(an entire day's ingestion partition is lost) — no rows at all
    /// from that day, in either table.
    pub day_loss: f64,
    /// P(a test's scamper sidecar row is missing entirely).
    pub sidecar_loss: f64,
    /// P(a surviving sidecar trace is truncated to a strict hop prefix) —
    /// the trace died mid-path, so the AS path is cut short and the border
    /// crossing may fall off the end.
    pub sidecar_truncation: f64,
    /// P(a published `unified_download` row is corrupted) — see
    /// [`Corruption`] for the variants.
    pub corrupt_row: f64,
    /// Extra P(geolocation fails) on top of the geo model's own error
    /// rate: oblast and city come back null.
    pub geo_failure: f64,
}

impl FaultPlan {
    /// No faults at all — the default; byte-identical to a run without the
    /// fault layer.
    pub const NONE: FaultPlan = FaultPlan {
        fault_seed: 0,
        site_outage: 0.0,
        day_loss: 0.0,
        sidecar_loss: 0.0,
        sidecar_truncation: 0.0,
        corrupt_row: 0.0,
        geo_failure: 0.0,
    };

    /// Routine operational noise: rare outages, a few percent of sidecars
    /// missing, isolated corrupt rows.
    pub const LIGHT: FaultPlan = FaultPlan {
        fault_seed: 0x11,
        site_outage: 0.01,
        day_loss: 0.0,
        sidecar_loss: 0.03,
        sidecar_truncation: 0.02,
        corrupt_row: 0.005,
        geo_failure: 0.02,
    };

    /// A rough month: sites flapping, a tenth of sidecars gone, visible
    /// corruption, a lost partition possible.
    pub const MODERATE: FaultPlan = FaultPlan {
        fault_seed: 0x22,
        site_outage: 0.04,
        day_loss: 0.02,
        sidecar_loss: 0.10,
        sidecar_truncation: 0.08,
        corrupt_row: 0.02,
        geo_failure: 0.08,
    };

    /// Infrastructure in serious trouble — the pipeline must still finish
    /// and annotate what it lost.
    pub const SEVERE: FaultPlan = FaultPlan {
        fault_seed: 0x33,
        site_outage: 0.12,
        day_loss: 0.06,
        sidecar_loss: 0.30,
        sidecar_truncation: 0.20,
        corrupt_row: 0.08,
        geo_failure: 0.25,
    };

    /// Every scamper sidecar lost: the §5 path analyses have *zero* input
    /// while the §4 download analyses still run. The acceptance stress
    /// case for graceful degradation.
    pub const SIDECAR_BLACKOUT: FaultPlan = FaultPlan {
        fault_seed: 0x44,
        site_outage: 0.0,
        day_loss: 0.0,
        sidecar_loss: 1.0,
        sidecar_truncation: 0.0,
        corrupt_row: 0.0,
        geo_failure: 0.0,
    };

    /// The built-in plans with their CLI names, in escalation order.
    pub const BUILTIN: [(&'static str, FaultPlan); 5] = [
        ("none", FaultPlan::NONE),
        ("light", FaultPlan::LIGHT),
        ("moderate", FaultPlan::MODERATE),
        ("severe", FaultPlan::SEVERE),
        ("sidecar-blackout", FaultPlan::SIDECAR_BLACKOUT),
    ];

    /// Looks up a built-in plan by its CLI name.
    pub fn by_name(name: &str) -> Option<FaultPlan> {
        FaultPlan::BUILTIN.iter().find(|(n, _)| *n == name).map(|(_, p)| *p)
    }

    /// Whether this plan injects nothing (fast-path check).
    pub fn is_none(&self) -> bool {
        self.site_outage == 0.0
            && self.day_loss == 0.0
            && self.sidecar_loss == 0.0
            && self.sidecar_truncation == 0.0
            && self.corrupt_row == 0.0
            && self.geo_failure == 0.0
    }

    /// One keyed coin: true with probability `p`, as a pure function of
    /// `(fault_seed, domain, key)`.
    fn coin(&self, domain: u64, key: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let h = splitmix64(self.fault_seed ^ splitmix64(domain ^ splitmix64(key)));
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Is `site` (keyed by its server address) down on `day`?
    pub fn site_down(&self, site_ip: u32, day: i64) -> bool {
        self.coin(domain::SITE_OUTAGE, (site_ip as u64) << 20 ^ (day as u64), self.site_outage)
    }

    /// Is the whole ingestion partition for `day` lost?
    pub fn day_lost(&self, day: i64) -> bool {
        self.coin(domain::DAY_LOST, day as u64, self.day_loss)
    }

    fn test_key(client_ip: u32, day: i64, test_index: u64) -> u64 {
        // Each field gets its own splitmix64 round before mixing so no
        // field can alias into another's bits (bit-packing would let a
        // large test_index collide with the day field).
        splitmix64(splitmix64(client_ip as u64) ^ splitmix64(day as u64) ^ test_index)
    }

    /// Is this test's scamper sidecar row missing?
    pub fn sidecar_dropped(&self, client_ip: u32, day: i64, test_index: u64) -> bool {
        self.coin(domain::SIDECAR_LOSS, Self::test_key(client_ip, day, test_index), self.sidecar_loss)
    }

    /// If this test's surviving sidecar trace is truncated, the number of
    /// leading AS hops that survive (always ≥ 1, always < the original
    /// length); `None` when the trace is intact. Prefix-taking cannot
    /// introduce a loop, so truncated traces stay loop-free by
    /// construction.
    pub fn sidecar_truncated_len(
        &self,
        client_ip: u32,
        day: i64,
        test_index: u64,
        path_len: usize,
    ) -> Option<usize> {
        if path_len < 2 {
            return None;
        }
        let key = Self::test_key(client_ip, day, test_index);
        if !self.coin(domain::SIDECAR_TRUNC, key, self.sidecar_truncation) {
            return None;
        }
        let h = splitmix64(self.fault_seed ^ splitmix64(domain::VARIANT ^ key));
        Some(1 + (h as usize % (path_len - 1)))
    }

    /// If this published download row is corrupted, how; `None` when it is
    /// clean.
    pub fn row_corruption(&self, client_ip: u32, day: i64, test_index: u64) -> Option<Corruption> {
        let key = Self::test_key(client_ip, day, test_index);
        if !self.coin(domain::CORRUPT, key, self.corrupt_row) {
            return None;
        }
        let h = splitmix64(self.fault_seed ^ splitmix64(domain::VARIANT ^ splitmix64(key)));
        Some(match h % 5 {
            0 => Corruption::NanThroughput,
            1 => Corruption::NegativeThroughput,
            2 => Corruption::NanRtt,
            3 => Corruption::NanLoss,
            _ => Corruption::NullGeo,
        })
    }

    /// Does the extra geolocation failure hit this row?
    pub fn geo_failed(&self, client_ip: u32, day: i64, test_index: u64) -> bool {
        self.coin(domain::GEO_FAIL, Self::test_key(client_ip, day, test_index), self.geo_failure)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// Truncates an AS path to its first `keep` hops. A strict prefix of a
/// loop-free path is loop-free, so a truncated trace can never fabricate a
/// routing loop.
pub fn truncate_as_path(path: &[Asn], keep: usize) -> Vec<Asn> {
    path[..keep.min(path.len())].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coins_are_deterministic_and_independent() {
        let p = FaultPlan { sidecar_loss: 0.5, corrupt_row: 0.5, ..FaultPlan::NONE };
        for i in 0..200u32 {
            assert_eq!(p.sidecar_dropped(i, 7, 3), p.sidecar_dropped(i, 7, 3));
        }
        // The two kinds disagree somewhere: independent streams.
        let differs = (0..200u32)
            .any(|i| p.sidecar_dropped(i, 7, 3) != p.row_corruption(i, 7, 3).is_some());
        assert!(differs, "fault kinds share a coin stream");
    }

    #[test]
    fn coin_rate_tracks_probability() {
        let p = FaultPlan { sidecar_loss: 0.3, ..FaultPlan::NONE };
        let hits = (0..10_000u32).filter(|&i| p.sidecar_dropped(i, 1, 0)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn extreme_probabilities_are_exact() {
        let all = FaultPlan { sidecar_loss: 1.0, ..FaultPlan::NONE };
        let none = FaultPlan::NONE;
        for i in 0..100u32 {
            assert!(all.sidecar_dropped(i, 1, 0));
            assert!(!none.sidecar_dropped(i, 1, 0));
        }
        assert!(FaultPlan::SIDECAR_BLACKOUT.sidecar_dropped(42, 500, 9));
    }

    #[test]
    fn truncation_yields_strict_nonempty_prefix() {
        let p = FaultPlan { sidecar_truncation: 1.0, ..FaultPlan::NONE };
        for len in 2..10usize {
            let keep = p.sidecar_truncated_len(1, 2, 3, len).expect("p = 1 truncates");
            assert!(keep >= 1 && keep < len, "keep = {keep} of {len}");
        }
        // Single-hop paths cannot be truncated further.
        assert_eq!(p.sidecar_truncated_len(1, 2, 3, 1), None);
    }

    #[test]
    fn by_name_resolves_all_builtins() {
        for (name, plan) in FaultPlan::BUILTIN {
            assert_eq!(FaultPlan::by_name(name), Some(plan));
        }
        assert_eq!(FaultPlan::by_name("apocalypse"), None);
        assert!(FaultPlan::by_name("none").unwrap().is_none());
        assert!(!FaultPlan::by_name("light").unwrap().is_none());
    }

    #[test]
    fn corruption_covers_all_variants() {
        let p = FaultPlan { corrupt_row: 1.0, ..FaultPlan::NONE };
        let mut seen = std::collections::HashSet::new();
        for i in 0..500u32 {
            seen.insert(format!("{:?}", p.row_corruption(i, 1, 0).unwrap()));
        }
        assert_eq!(seen.len(), 5, "variants seen: {seen:?}");
    }
}
