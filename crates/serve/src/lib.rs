//! # ndt-serve
//!
//! Long-running query/report serving for the reproduction: the
//! `ukraine-ndt serve` command loads a columnar store once and then
//! answers report-fragment requests over the [`ndt_analysis::ANALYSIS_STAGES`]
//! registry until told to drain — the "serves heavy traffic" leg of the
//! project's north star. Where the batch pipeline hardens against broken
//! data (PR 1) and broken execution (PR 2), this crate hardens against
//! **overload**: too many concurrent requests must degrade service
//! deterministically, never collapse it.
//!
//! The overload contract, each clause carried by one mechanism:
//!
//! * **Bounded admission** ([`server`]) — requests enter a fixed-capacity
//!   queue; when it is full they are *shed* with a typed
//!   [`ServeError::Overloaded`] rejection carrying a retry-after hint.
//!   Queue depth is bounded by construction, so accepted-request latency
//!   stays bounded no matter the offered load.
//! * **Deadline propagation** — every request carries a wall-clock budget
//!   that starts at admission. Time spent queued counts against it; a
//!   request that expires in the queue is failed without executing, and
//!   the remaining budget is handed to the runner's executor
//!   ([`ndt_runner::run_isolated`]), whose cancel-token machinery
//!   guarantees an abandoned request can never commit a late result.
//! * **Panic isolation** — request bodies run under the same
//!   `catch_unwind` worker-thread isolation as pipeline stages: a
//!   panicking stage fails *that request* ([`ServeError::Panicked`]) and
//!   the server lives.
//! * **Result cache + single-flight** ([`cache`]) — responses are cached
//!   by store config fingerprint + stage name, and concurrent identical
//!   requests deduplicate: one executes, the rest wait for its result.
//!   Cached responses are byte-identical to cold ones (they are the same
//!   `Arc<str>`).
//! * **Graceful drain** — shutdown stops admission (typed
//!   [`ServeError::Draining`] rejections), finishes every in-flight and
//!   queued request, delivers their responses, then joins the workers.
//!
//! [`net`] puts a line-oriented TCP protocol in front of the server and
//! [`loadgen`] drives it with hundreds of concurrent synthetic clients —
//! mixed cache-hit/miss, tight-deadline ("slow") and panicking workloads —
//! reporting client-side p50/p99 latency, throughput and shed rate.
//!
//! Every request is wired through `ndt-obs`: a `serve.request` span per
//! executed request (p50/p99 in the metrics artifact) and `serve.*`
//! counters for shed/timeout/panic/cache-hit accounting. All serve
//! counters live in the **process** namespace: unlike simulation
//! counters they depend on thread scheduling and offered load, so they
//! sit deliberately outside the determinism contract (`DESIGN.md` §15).

pub mod cache;
pub mod loadgen;
pub mod net;
pub mod server;

pub use cache::Cache;
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use net::{fetch, serve_tcp, Reply, Request};
pub use server::{Server, ServerHandle, ServeConfig, ServeError, ServeStats};
