//! Property-based tests: the query algebra behaves like relational algebra,
//! and the vectorized path is an exact refinement of it — code-level
//! predicate evaluation matches decoded-string evaluation, and accumulator
//! merges are shard-order invariant at the bit level.

use ndt_bq::vectorized::{AggSpec, AggState, BatchCol, ColumnarQuery, RowBatch};
use ndt_bq::{ColType, Column, Table, Value};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec((0i64..5, 0u8..4, prop::option::of(-100.0..100.0f64)), 0..120).prop_map(
        |rows| {
            let mut t = Table::new(
                "t",
                &[("k", ColType::Int), ("g", ColType::Str), ("x", ColType::Float)],
            );
            for (k, g, x) in rows {
                t.push(vec![
                    Value::Int(k),
                    Value::from(format!("g{g}")),
                    x.map(Value::Float).unwrap_or(Value::Null),
                ]);
            }
            t
        },
    )
}

proptest! {
    /// Group-by partitions the selection: group sizes sum to the total and
    /// every row lands in exactly one group.
    #[test]
    fn group_by_partitions(t in arb_table()) {
        let q = t.query();
        let groups = q.group_by("g");
        let total: usize = groups.iter().map(|(_, g)| g.count()).sum();
        prop_assert_eq!(total, q.count());
        let mut seen = std::collections::HashSet::new();
        for (_, g) in &groups {
            for &i in g.indices() {
                prop_assert!(seen.insert(i), "row {i} in two groups");
            }
        }
    }

    /// Filtering is idempotent and anti-monotone in selectivity.
    #[test]
    fn filter_idempotent(t in arb_table(), lo in 0i64..5) {
        let once = t.query().filter_int_range("k", lo, 5);
        let twice = t.query().filter_int_range("k", lo, 5).filter_int_range("k", lo, 5);
        prop_assert_eq!(once.indices(), twice.indices());
        prop_assert!(once.count() <= t.len());
    }

    /// Filter order commutes.
    #[test]
    fn filters_commute(t in arb_table(), lo in 0i64..5, g in 0u8..4) {
        let gv = Value::from(format!("g{g}"));
        let a = t.query().filter_int_range("k", lo, 5).filter_eq("g", &gv);
        let b = t.query().filter_eq("g", &gv).filter_int_range("k", lo, 5);
        prop_assert_eq!(a.indices(), b.indices());
    }

    /// Sum distributes over the groups of any partition.
    #[test]
    fn sum_distributes_over_groups(t in arb_table()) {
        let q = t.query();
        let total = q.sum("x");
        let by_group: f64 = q.group_by("g").iter().map(|(_, g)| g.sum("x")).sum();
        prop_assert!((total - by_group).abs() < 1e-6 * (1.0 + total.abs()));
    }

    /// Aggregates stay within the data's bounds.
    #[test]
    fn aggregate_bounds(t in arb_table()) {
        let q = t.query();
        let xs = q.floats("x");
        if !xs.is_empty() {
            let mn = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(q.mean("x") >= mn - 1e-9 && q.mean("x") <= mx + 1e-9);
            prop_assert!(q.median("x") >= mn - 1e-9 && q.median("x") <= mx + 1e-9);
            prop_assert_eq!(q.min("x"), mn);
            prop_assert_eq!(q.max("x"), mx);
        }
    }

    /// `top_groups_by_count` returns groups in non-increasing size order and
    /// never more than requested.
    #[test]
    fn top_groups_ordered(t in arb_table(), n in 0usize..6) {
        let q = t.query();
        let top = q.top_groups_by_count("g", n);
        prop_assert!(top.len() <= n);
        prop_assert!(top.windows(2).all(|w| w[0].1.count() >= w[1].1.count()));
    }
}

/// A "dirty" table whose float column mixes nulls, NaNs, infinities and
/// finite values — the shape fault injection produces.
fn arb_dirty_table() -> impl Strategy<Value = Table> {
    // A selector byte picks the cell kind: null, NaN, ±infinity or finite.
    prop::collection::vec((0i64..5, 0u8..10, -100.0..100.0f64), 0..100).prop_map(|rows| {
        let mut t = Table::new("dirty", &[("k", ColType::Int), ("x", ColType::Float)]);
        for (k, kind, finite) in rows {
            let x = match kind {
                0 | 1 => Value::Null,
                2 => Value::Float(f64::NAN),
                3 => Value::Float(f64::INFINITY),
                4 => Value::Float(f64::NEG_INFINITY),
                _ => Value::Float(finite),
            };
            t.push(vec![Value::Int(k), x]);
        }
        t
    })
}

proptest! {
    /// The fallible aggregates never panic and never leak NaN: on empty,
    /// all-null or corrupt-bearing columns they return a typed empty
    /// (`Ok(None)`) or a finite value — never `Err`, never a poisoned
    /// number.
    #[test]
    fn try_aggregates_are_panic_free_and_nan_free(t in arb_dirty_table()) {
        let q = t.query();
        let (finite, dropped) = q.finite_floats("x").unwrap();
        let non_null = q.try_floats("x").unwrap().len();
        prop_assert_eq!(finite.len() + dropped, non_null, "finite/dropped split loses rows");
        prop_assert!(finite.iter().all(|v| v.is_finite()));

        for (val, needs) in [
            (q.try_mean("x").unwrap(), 1),
            (q.try_median("x").unwrap(), 1),
            (q.try_std_dev("x").unwrap(), 2),
            (q.try_min("x").unwrap(), 1),
            (q.try_max("x").unwrap(), 1),
        ] {
            if finite.len() >= needs {
                let v = val.expect("enough finite values for an aggregate");
                prop_assert!(v.is_finite(), "aggregate leaked non-finite {v}");
            } else {
                prop_assert!(val.is_none(), "typed empty expected, got {val:?}");
            }
        }
        let s = q.try_sum("x").unwrap();
        prop_assert!(s.is_finite(), "sum leaked non-finite {s}");
    }

    /// Schema drift is an error value, not a panic: every fallible entry
    /// point rejects an unknown column with `Err`.
    #[test]
    fn unknown_columns_error_instead_of_panicking(t in arb_dirty_table()) {
        let q = t.query();
        prop_assert!(q.try_floats("nope").is_err());
        prop_assert!(q.finite_floats("nope").is_err());
        prop_assert!(q.try_mean("nope").is_err());
        prop_assert!(q.try_median("nope").is_err());
        prop_assert!(q.try_std_dev("nope").is_err());
        prop_assert!(q.try_min("nope").is_err());
        prop_assert!(q.try_max("nope").is_err());
        prop_assert!(q.try_sum("nope").is_err());
        prop_assert!(t.try_col_index("nope").is_err());
        prop_assert!(t.query().try_filter_not_null("nope").is_err());
    }

    /// The infallible aggregates tolerate dirty columns too (`total_cmp`
    /// sorting): they may return NaN but must not panic.
    #[test]
    fn legacy_aggregates_do_not_panic_on_dirty_columns(t in arb_dirty_table()) {
        let q = t.query();
        let _ = q.mean("x");
        let _ = q.median("x");
        let _ = q.std_dev("x");
        let _ = q.min("x");
        let _ = q.max("x");
        let _ = q.sum("x");
    }
}

// ---------------------------------------------------------------------------
// Vectorized path: dict-code evaluation ≡ decoded-string evaluation
// ---------------------------------------------------------------------------

/// Small closed vocabulary so generated columns hit repeated values,
/// absent needles and the empty string.
const WORDS: &[&str] = &["", "Kiev City", "L'viv", "Kharkiv", "Donets'k"];
/// Needle candidates: every vocabulary word plus one guaranteed-absent key.
const NEEDLES: &[&str] = &["", "Kiev City", "L'viv", "Kharkiv", "Donets'k", "Atlantis"];

fn word_rows() -> impl Strategy<Value = Vec<Option<usize>>> {
    prop::collection::vec(prop::option::of(0usize..WORDS.len()), 0..40)
}

/// Builds a plain-Str table and its dict-encoded twin from the same rows.
fn twin_tables(rows: &[Option<usize>]) -> (Table, Table) {
    let mut plain = Table::new("t", &[("s", ColType::Str), ("v", ColType::Float)]);
    let mut dict = Table::new("t", &[("s", ColType::Str), ("v", ColType::Float)]);
    dict.dict_encode("s");
    for (i, w) in rows.iter().enumerate() {
        let s = w.map_or(Value::Null, |w| Value::from(WORDS[w]));
        let v = Value::Float(i as f64 * 0.5 - 3.0);
        plain.push(vec![s.clone(), v.clone()]);
        dict.push(vec![s, v]);
    }
    (plain, dict)
}

proptest! {
    /// Dict-encoded tables are logically equal to their plain twins and
    /// answer filter/group/distinct queries identically — including the
    /// all-null column (empty dictionary) and absent-needle cases.
    #[test]
    fn dict_table_query_equivalence(
        rows in word_rows(),
        needle in 0usize..NEEDLES.len(),
    ) {
        let (plain, dict) = twin_tables(&rows);
        prop_assert_eq!(&plain, &dict);

        let needle = Value::from(NEEDLES[needle]);
        let p = plain.query().filter_eq("s", &needle);
        let d = dict.query().filter_eq("s", &needle);
        prop_assert_eq!(p.indices(), d.indices());
        prop_assert_eq!(p.floats("v"), d.floats("v"));

        // Null needles never match on either representation.
        prop_assert_eq!(plain.query().filter_eq("s", &Value::Null).count(), 0);
        prop_assert_eq!(dict.query().filter_eq("s", &Value::Null).count(), 0);

        let pg = plain.query().group_by("s");
        let dg = dict.query().group_by("s");
        prop_assert_eq!(pg.len(), dg.len());
        for ((pk, pq), (dk, dq)) in pg.iter().zip(dg.iter()) {
            prop_assert_eq!(pk, dk);
            prop_assert_eq!(pq.indices(), dq.indices());
        }
        prop_assert_eq!(plain.query().distinct("s"), dict.query().distinct("s"));
    }

    /// The streaming plan over dictionary batches selects exactly the rows
    /// the decoded-string batch selects, whatever the batch split.
    #[test]
    fn code_filter_equals_string_filter(
        rows in word_rows(),
        needle in 0usize..NEEDLES.len(),
        split in 0usize..41,
    ) {
        let (plain, dict) = twin_tables(&rows);
        let plan = ColumnarQuery::new()
            .filter_str_eq("s", NEEDLES[needle])
            .agg("v", AggSpec::Count)
            .agg("v", AggSpec::Sum);

        // Reference: decoded strings, one batch.
        let mut st_ref = plan.start();
        plan.feed(&mut st_ref, &RowBatch::from_table(&plain)).expect("feed plain");

        // Candidate: dictionary codes, split into two batches at an
        // arbitrary boundary (exercises per-batch needle resolution).
        let mut st = plan.start();
        let cut = split.min(rows.len());
        let (Column::Dict(d), Column::Float(v)) = (dict.column("s"), dict.column("v"))
        else { panic!("twin schema") };
        for (lo, hi) in [(0, cut), (cut, rows.len())] {
            let b = RowBatch::new(hi - lo)
                .with("s", BatchCol::Dict { dict: d.dict(), codes: &d.codes()[lo..hi] })
                .with("v", BatchCol::Float(&v[lo..hi]));
            plan.feed(&mut st, &b).expect("feed dict");
        }

        prop_assert_eq!(st.rows_matched(), st_ref.rows_matched());
        let (got, want) = (st.finish(), st_ref.finish());
        prop_assert_eq!(got.len(), want.len());
        for ((_, ga), (_, wa)) in got.iter().zip(&want) {
            prop_assert_eq!(ga[0].to_bits(), wa[0].to_bits());
            prop_assert_eq!(ga[1].to_bits(), wa[1].to_bits());
        }
    }

    /// Merging per-shard accumulators is associative at the bit level:
    /// left fold, right fold and a reversed fold over the same shards all
    /// finish identically to a sequential scan. Values include NaN, -0.0
    /// and magnitude spreads that defeat naive summation.
    #[test]
    fn accumulator_merge_is_shard_order_invariant(
        raw in prop::collection::vec((0u8..6, -1.0e12f64..1.0e12), 1..60),
        cuts in (1usize..20, 1usize..20),
        which in 0usize..5,
    ) {
        let vals: Vec<f64> = raw
            .iter()
            .map(|&(kind, v)| match kind {
                0 => f64::NAN,
                1 => -0.0,
                2 => 1.0e16,
                3 => -1.0e16,
                4 => v * 1.0e-10,
                _ => v,
            })
            .collect();
        let spec = [
            AggSpec::Sum,
            AggSpec::Mean,
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Percentile(0.5),
        ][which];

        // Split into three shards at arbitrary boundaries.
        let (a, b) = (cuts.0.min(vals.len()), cuts.1.min(vals.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let shards = [&vals[..lo], &vals[lo..hi], &vals[hi..]];
        let state = |s: &[f64]| {
            let mut acc = AggState::new(spec);
            for &v in s {
                acc.push(Some(v));
            }
            acc
        };

        let mut left = state(shards[0]);
        left.merge(state(shards[1]));
        left.merge(state(shards[2]));

        let mut right_tail = state(shards[1]);
        right_tail.merge(state(shards[2]));
        let mut right = state(shards[0]);
        right.merge(right_tail);

        let mut rev = state(shards[2]);
        rev.merge(state(shards[1]));
        rev.merge(state(shards[0]));

        let sequential = state(&vals);
        prop_assert_eq!(left.finish().to_bits(), sequential.finish().to_bits());
        prop_assert_eq!(right.finish().to_bits(), sequential.finish().to_bits());
        prop_assert_eq!(rev.finish().to_bits(), sequential.finish().to_bits());
    }
}
