//! Graphviz export of the AS-level topology.
//!
//! `dot -Tsvg topology.dot -o topology.svg` renders the model: Ukrainian
//! eyeballs and transits, the border ASes of Figure 5, and the M-Lab
//! hosting networks, with edge styling by BGP relationship and current
//! link state.

use crate::asn::{AsKind, Asn};
use crate::graph::{Relationship, Topology};
use std::collections::BTreeSet;

/// Renders the AS-level graph in Graphviz `dot` syntax.
///
/// One node per AS (shaped/colored by kind), one edge per AS adjacency
/// (deduplicating parallel links; a dashed edge means every parallel link
/// of the pair is currently down). M-Lab host ASes can be elided with
/// `include_hosts = false` — with 54 of them the picture gets busy.
pub fn to_dot(topo: &Topology, include_hosts: bool) -> String {
    let mut out = String::from("graph ukraine_ndt {\n  layout=neato;\n  overlap=false;\n");
    // Nodes.
    for info in topo.catalog.iter() {
        if info.kind == AsKind::MLabHost && !include_hosts {
            continue;
        }
        let (shape, color) = match info.kind {
            AsKind::UkrEyeball => ("ellipse", "lightblue"),
            AsKind::UkrTransit => ("box", "gold"),
            AsKind::Border => ("diamond", "salmon"),
            AsKind::ForeignTransit => ("diamond", "lightgray"),
            AsKind::MLabHost => ("point", "gray"),
        };
        out.push_str(&format!(
            "  \"{}\" [label=\"{}\\n{}\", shape={shape}, style=filled, fillcolor={color}];\n",
            info.asn, info.name, info.asn
        ));
    }
    // Edges: one per AS pair.
    let mut pairs: BTreeSet<(Asn, Asn)> = BTreeSet::new();
    for link in topo.links() {
        let (a, b) = if link.a_asn < link.b_asn {
            (link.a_asn, link.b_asn)
        } else {
            (link.b_asn, link.a_asn)
        };
        pairs.insert((a, b));
    }
    for (a, b) in pairs {
        if !include_hosts {
            let host = |asn: Asn| topo.catalog.get(asn).map(|i| i.kind) == Some(AsKind::MLabHost);
            if host(a) || host(b) {
                continue;
            }
        }
        let links = topo.links_between(a, b);
        let any_up = links.iter().any(|id| topo.link(*id).state.up);
        let rel = topo.link(links[0]).rel_from(a);
        let style = if any_up { "solid" } else { "dashed" };
        let color = match rel {
            Relationship::PeerToPeer => "gray",
            _ => "black",
        };
        let label = if links.len() > 1 { format!(" [label=\"x{}\"]", links.len()) } else { String::new() };
        out.push_str(&format!(
            "  \"{a}\" -- \"{b}\" [style={style}, color={color}]{label};\n"
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_topology, TopologyConfig};
    use crate::asn::well_known as wk;

    #[test]
    fn dot_contains_the_paper_ases_and_valid_syntax() {
        let bt = build_topology(&TopologyConfig::default());
        let dot = to_dot(&bt.topology, false);
        assert!(dot.starts_with("graph ukraine_ndt {"));
        assert!(dot.trim_end().ends_with('}'));
        for name in ["Kyivstar", "Hurricane Electric", "AS199995", "TeNeT"] {
            assert!(dot.contains(name), "missing {name}");
        }
        // Hosts elided.
        assert!(!dot.contains("MLab Host"));
        // Parallel links annotated.
        assert!(dot.contains("label=\"x"), "parallel-link annotation missing");
    }

    #[test]
    fn downed_pairs_render_dashed() {
        let mut bt = build_topology(&TopologyConfig::default());
        for id in bt.topology.links_between(wk::AS199995, wk::AS6663) {
            bt.topology.set_link_up(id, false);
        }
        let dot = to_dot(&bt.topology, false);
        let line = dot
            .lines()
            .find(|l| l.contains("\"AS6663\"") && l.contains("AS199995") && l.contains("--"))
            .expect("edge rendered");
        assert!(line.contains("dashed"), "line = {line}");
    }

    #[test]
    fn including_hosts_adds_nodes() {
        let bt = build_topology(&TopologyConfig::default());
        let with = to_dot(&bt.topology, true);
        let without = to_dot(&bt.topology, false);
        assert!(with.len() > without.len());
        assert!(with.contains("MLab Host"));
    }
}
