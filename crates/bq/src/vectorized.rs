//! Vectorized, batch-at-a-time execution over columnar data.
//!
//! [`crate::Query`] materializes an index set over a fully-loaded
//! [`Table`] — simple, but peak memory is O(corpus). This module provides
//! the streaming counterpart the store scanner uses: predicates evaluated
//! on dictionary codes and raw column storage (never per-row [`Value`]
//! boxes), rows surviving all predicates fed into per-group **accumulators**,
//! and only O(group cardinality) state retained between batches.
//!
//! The building blocks, bottom-up:
//!
//! * [`ExactSum`] — correctly-rounded f64 summation (Shewchuk expansion,
//!   the `math.fsum` algorithm). Because the result is the exact real sum
//!   rounded once, it is **bit-identical under any merge order** — the
//!   property that lets parallel shard scans fold their partial sums in
//!   completion order without perturbing output bytes.
//! * [`AggState`] — count / sum / mean / min / max / percentile
//!   accumulators with `push` / `merge` / `finish`. Numeric aggregates
//!   consume finite values only (matching `Query::try_sum` /
//!   `finite_floats` semantics); min/max/percentile order by
//!   [`f64::total_cmp`], so merge is associative bit-for-bit.
//! * [`SelVec`] — a selection vector of surviving row indices within one
//!   batch; predicates narrow it in place.
//! * [`GroupedAgg`] — first-appearance-ordered map from group key to
//!   accumulator row; tracks its own peak cardinality.
//! * [`ColumnarQuery`] / [`ScanState`] — a small query plan (filters +
//!   group-by + aggregates) executed by feeding [`RowBatch`] views one at
//!   a time. Batches borrow column storage — a scanner can decode one
//!   page, feed it, and drop it.

use crate::error::BqError;
use crate::table::{ColType, Column, Table, NULL_CODE};
use crate::value::Value;
use std::collections::HashMap;
use std::hash::Hash;

// ---------------------------------------------------------------------------
// ExactSum
// ---------------------------------------------------------------------------

/// Correctly-rounded floating-point summation via a non-overlapping
/// expansion of partials (Shewchuk; the algorithm behind Python's
/// `math.fsum`). The running state is exact, so [`ExactSum::value`] returns
/// the true real-number sum rounded to nearest once — independent of the
/// order values were pushed or partial sums merged.
///
/// Non-finite inputs fall out of the expansion invariants, so they are
/// tracked separately with IEEE addition (itself order-invariant for the
/// inf/NaN lattice) and dominate the result once present.
#[derive(Debug, Clone, Default)]
pub struct ExactSum {
    partials: Vec<f64>,
    non_finite: Option<f64>,
}

impl ExactSum {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one value to the running exact sum.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite = Some(self.non_finite.unwrap_or(0.0) + v);
            return;
        }
        let mut x = v;
        let mut i = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[i] = lo;
                i += 1;
            }
            x = hi;
        }
        self.partials.truncate(i);
        self.partials.push(x);
    }

    /// Folds another exact sum into this one; exact, so associative and
    /// commutative bit-for-bit.
    pub fn merge(&mut self, other: &ExactSum) {
        for &p in &other.partials {
            self.add(p);
        }
        if let Some(nf) = other.non_finite {
            self.non_finite = Some(self.non_finite.unwrap_or(0.0) + nf);
        }
    }

    /// The exact sum, rounded to nearest-even once (fsum's final rounding,
    /// including the two-partial tie correction).
    pub fn value(&self) -> f64 {
        if let Some(nf) = self.non_finite {
            return nf;
        }
        let p = &self.partials;
        let mut n = p.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut hi = p[n];
        let mut lo = 0.0f64;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = p[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        // Round-half-even across more than two partials: if the residue and
        // the next partial push the same way, the half-ulp tie breaks up.
        if n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

// ---------------------------------------------------------------------------
// Accumulators
// ---------------------------------------------------------------------------

/// Which aggregate an accumulator computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggSpec {
    /// Number of selected rows (nulls included), as f64.
    Count,
    /// Sum over finite values (`Query::try_sum` semantics; 0.0 when empty).
    Sum,
    /// Mean over finite values (NaN when empty).
    Mean,
    /// Minimum by `total_cmp` over finite values (NaN when empty).
    Min,
    /// Maximum by `total_cmp` over finite values (NaN when empty).
    Max,
    /// Quantile `q` in `[0, 1]` over finite values, sorted by `total_cmp`
    /// with linear interpolation at rank `q * (n - 1)`; `Percentile(0.5)`
    /// is bit-identical to `Query::median` over the same finite values.
    Percentile(f64),
}

/// Mergeable state for one aggregate over one group. `push` consumes the
/// value cell of each selected row; `merge` folds a sibling shard's state
/// in; `finish` yields the aggregate. All three are deterministic, and
/// `merge` is associative and commutative at the bit level: counts are
/// integers, sums are [`ExactSum`], min/max/percentile order by
/// [`f64::total_cmp`] (equality under which implies identical bits).
#[derive(Debug, Clone)]
pub enum AggState {
    Count(u64),
    Sum(ExactSum),
    Mean(ExactSum, u64),
    Min(Option<f64>),
    Max(Option<f64>),
    Percentile(f64, Vec<f64>),
}

impl AggState {
    pub fn new(spec: AggSpec) -> Self {
        match spec {
            AggSpec::Count => AggState::Count(0),
            AggSpec::Sum => AggState::Sum(ExactSum::new()),
            AggSpec::Mean => AggState::Mean(ExactSum::new(), 0),
            AggSpec::Min => AggState::Min(None),
            AggSpec::Max => AggState::Max(None),
            AggSpec::Percentile(q) => AggState::Percentile(q, Vec::new()),
        }
    }

    /// Feeds one selected row's value cell (None = null).
    pub fn push(&mut self, v: Option<f64>) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s) => {
                if let Some(v) = v.filter(|v| v.is_finite()) {
                    s.add(v);
                }
            }
            AggState::Mean(s, n) => {
                if let Some(v) = v.filter(|v| v.is_finite()) {
                    s.add(v);
                    *n += 1;
                }
            }
            AggState::Min(best) => {
                if let Some(v) = v.filter(|v| v.is_finite()) {
                    *best = Some(match *best {
                        Some(b) if b.total_cmp(&v).is_le() => b,
                        _ => v,
                    });
                }
            }
            AggState::Max(best) => {
                if let Some(v) = v.filter(|v| v.is_finite()) {
                    *best = Some(match *best {
                        Some(b) if b.total_cmp(&v).is_ge() => b,
                        _ => v,
                    });
                }
            }
            AggState::Percentile(_, vals) => {
                if let Some(v) = v.filter(|v| v.is_finite()) {
                    vals.push(v);
                }
            }
        }
    }

    /// Folds a sibling state (same spec) into this one.
    ///
    /// # Panics
    /// If the two states were built from different [`AggSpec`]s.
    pub fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => a.merge(&b),
            (AggState::Mean(a, an), AggState::Mean(b, bn)) => {
                a.merge(&b);
                *an += bn;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(v) = b {
                    *a = Some(match *a {
                        Some(x) if x.total_cmp(&v).is_le() => x,
                        _ => v,
                    });
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(v) = b {
                    *a = Some(match *a {
                        Some(x) if x.total_cmp(&v).is_ge() => x,
                        _ => v,
                    });
                }
            }
            (AggState::Percentile(_, a), AggState::Percentile(_, b)) => a.extend(b),
            _ => panic!("AggState::merge: mismatched accumulator kinds"),
        }
    }

    /// The aggregate value (NaN for empty numeric aggregates).
    pub fn finish(&self) -> f64 {
        match self {
            AggState::Count(n) => *n as f64,
            AggState::Sum(s) => s.value(),
            AggState::Mean(s, n) => {
                if *n == 0 {
                    f64::NAN
                } else {
                    s.value() / *n as f64
                }
            }
            AggState::Min(best) | AggState::Max(best) => best.unwrap_or(f64::NAN),
            AggState::Percentile(q, vals) => {
                if vals.is_empty() {
                    return f64::NAN;
                }
                let mut v = vals.clone();
                v.sort_by(f64::total_cmp);
                let rank = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let frac = rank - lo as f64;
                if frac == 0.0 {
                    v[lo]
                } else if frac == 0.5 {
                    // Same expression as Query::median's even-length arm.
                    0.5 * (v[lo] + v[hi])
                } else {
                    v[lo] * (1.0 - frac) + v[hi] * frac
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Selection vectors and batch predicates
// ---------------------------------------------------------------------------

/// Indices (within one batch) of the rows still alive after the predicates
/// applied so far. Predicates narrow it in place; later plan steps visit
/// only surviving rows.
#[derive(Debug, Clone, Default)]
pub struct SelVec {
    rows: Vec<u32>,
}

impl SelVec {
    /// Every row of an `n`-row batch selected.
    pub fn all(n: usize) -> Self {
        debug_assert!(n <= u32::MAX as usize);
        Self { rows: (0..n as u32).collect() }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Keeps only rows for which `keep` holds.
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.rows.retain(|&r| keep(r));
    }
}

/// Narrows `sel` to rows whose dictionary code equals `needle`.
/// `None` (needle absent from this batch's dictionary) clears the
/// selection — the whole point of code-level filtering: one dictionary
/// probe decides a 4096-row page without decoding a single string.
pub fn filter_codes_eq(sel: &mut SelVec, codes: &[u32], needle: Option<u32>) {
    match needle {
        None => sel.clear(),
        Some(c) => sel.retain(|r| codes[r as usize] == c),
    }
}

/// Narrows `sel` to rows whose integer cell lies in `[lo, hi)`; nulls drop.
pub fn filter_int_range(sel: &mut SelVec, col: &[Option<i64>], lo: i64, hi: i64) {
    sel.retain(|r| col[r as usize].is_some_and(|v| (lo..hi).contains(&v)));
}

// ---------------------------------------------------------------------------
// Grouped accumulation
// ---------------------------------------------------------------------------

/// Per-group accumulator rows in first-appearance order — the only state a
/// streaming grouped aggregation retains, hence O(group cardinality) peak
/// memory no matter how many rows flow through. Tracks its own peak
/// cardinality for the `store.peak_group_count` gauge.
#[derive(Debug, Clone)]
pub struct GroupedAgg<K> {
    specs: Vec<AggSpec>,
    order: Vec<K>,
    groups: HashMap<K, Vec<AggState>>,
    peak: usize,
}

impl<K: Eq + Hash + Clone> GroupedAgg<K> {
    pub fn new(specs: Vec<AggSpec>) -> Self {
        Self { specs, order: Vec::new(), groups: HashMap::new(), peak: 0 }
    }

    /// The accumulator row for `key`, created on first sight.
    pub fn accs(&mut self, key: &K) -> &mut Vec<AggState> {
        if !self.groups.contains_key(key) {
            self.order.push(key.clone());
            let row = self.specs.iter().map(|&s| AggState::new(s)).collect();
            self.groups.insert(key.clone(), row);
            self.peak = self.peak.max(self.groups.len());
        }
        self.groups.get_mut(key).expect("group just ensured")
    }

    /// Number of groups seen so far.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Highest concurrent group cardinality reached (== `len()` here, but
    /// stays meaningful if eviction is ever added).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Folds a sibling shard's groups in. Keys already present merge into
    /// the existing accumulator row; new keys append in the sibling's
    /// order — i.e. exactly the first-appearance order a sequential scan
    /// of `self`'s rows followed by `other`'s rows would have produced.
    pub fn merge(&mut self, other: GroupedAgg<K>) {
        for key in other.order {
            let theirs = other.groups.get(&key).cloned().expect("key listed in order");
            let mine = self.accs(&key);
            for (m, t) in mine.iter_mut().zip(theirs) {
                m.merge(t);
            }
        }
    }

    /// Groups in first-appearance order with their finished aggregates.
    pub fn finish(&self) -> Vec<(K, Vec<f64>)> {
        self.order
            .iter()
            .map(|k| {
                let row = self.groups.get(k).expect("key listed in order");
                (k.clone(), row.iter().map(AggState::finish).collect())
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Row batches
// ---------------------------------------------------------------------------

/// One column of a batch, borrowing the producer's storage.
#[derive(Debug, Clone, Copy)]
pub enum BatchCol<'a> {
    Int(&'a [Option<i64>]),
    Float(&'a [Option<f64>]),
    /// Non-nullable integers, as page decoders produce them — saves the
    /// producer re-wrapping every cell in `Some`.
    IntDense(&'a [i64]),
    /// Non-nullable floats (NaN is a value, not a null).
    FloatDense(&'a [f64]),
    /// Dictionary-encoded strings: per-row codes into `dict`,
    /// [`NULL_CODE`] for null. This is the form predicates want.
    Dict { dict: &'a [String], codes: &'a [u32] },
    /// Decoded strings — the slow reference form, kept so tests can prove
    /// code-level evaluation ≡ decoded-string evaluation.
    Str(&'a [Option<String>]),
}

impl BatchCol<'_> {
    fn len(&self) -> usize {
        match self {
            BatchCol::Int(c) => c.len(),
            BatchCol::Float(c) => c.len(),
            BatchCol::IntDense(c) => c.len(),
            BatchCol::FloatDense(c) => c.len(),
            BatchCol::Dict { codes, .. } => codes.len(),
            BatchCol::Str(c) => c.len(),
        }
    }
}

/// A borrowed, named view of one batch of rows (typically one decoded
/// row-group page set). Feeding a batch costs no ownership transfer — the
/// scanner decodes, feeds, drops.
pub struct RowBatch<'a> {
    rows: usize,
    cols: Vec<(&'a str, BatchCol<'a>)>,
}

impl<'a> RowBatch<'a> {
    pub fn new(rows: usize) -> Self {
        Self { rows, cols: Vec::new() }
    }

    /// Adds a column; panics if its length disagrees with the batch.
    pub fn with(mut self, name: &'a str, col: BatchCol<'a>) -> Self {
        assert_eq!(col.len(), self.rows, "batch column {name} length mismatch");
        self.cols.push((name, col));
        self
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    fn col(&self, table: &str, name: &str) -> Result<&BatchCol<'a>, BqError> {
        self.cols.iter().find(|(n, _)| *n == name).map(|(_, c)| c).ok_or_else(|| {
            BqError::NoSuchColumn {
                table: table.to_string(),
                column: name.to_string(),
                available: self.cols.iter().map(|(n, _)| (*n).to_string()).collect(),
            }
        })
    }

    /// Views an entire [`Table`] as one batch (tests and benchmarks; real
    /// scans feed page-sized batches).
    pub fn from_table(t: &'a Table) -> Self {
        let mut b = RowBatch::new(t.len());
        for name in t.column_names() {
            let col = match t.column(name) {
                Column::Int(c) => BatchCol::Int(c),
                Column::Float(c) => BatchCol::Float(c),
                Column::Str(c) => BatchCol::Str(c),
                Column::Dict(d) => BatchCol::Dict { dict: d.dict(), codes: d.codes() },
                Column::Bool(_) => panic!("RowBatch::from_table: bool columns unsupported"),
            };
            b = b.with(name, col);
        }
        b
    }
}

// ---------------------------------------------------------------------------
// ColumnarQuery
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Pred {
    StrEq(String, String),
    IntRange(String, i64, i64),
}

/// Interns group-key strings across batches so group identity survives
/// per-batch dictionaries with different code assignments.
#[derive(Debug, Clone, Default)]
struct KeyInterner {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl KeyInterner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        id
    }
}

/// A group key: either the whole selection (no group-by), an integer cell,
/// or an interned string id ([`NULL_CODE`] = the null group).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    All,
    Int(Option<i64>),
    Str(u32),
}

/// A small streaming query plan: equality / range filters, an optional
/// group-by column, and a list of aggregates. Build once, then run any
/// number of [`ScanState`]s over batch streams (one per shard worker) and
/// [`ScanState::merge`] them — results are bit-identical to a sequential
/// scan in the same shard order, and the retained state is O(groups).
///
/// ```
/// use ndt_bq::vectorized::{AggSpec, ColumnarQuery, RowBatch};
/// use ndt_bq::{ColType, Table, Value};
///
/// let mut t = Table::new("ndt.unified_download", &[
///     ("day", ColType::Int), ("oblast", ColType::Str), ("tput", ColType::Float),
/// ]);
/// t.dict_encode("oblast");
/// t.push(vec![Value::Int(419), Value::from("Kiev City"), Value::Float(50.0)]);
/// t.push(vec![Value::Int(420), Value::from("Kiev City"), Value::Float(30.0)]);
/// t.push(vec![Value::Int(419), Value::from("L'viv"), Value::Float(37.2)]);
///
/// let q = ColumnarQuery::new()
///     .filter_str_eq("oblast", "Kiev City")
///     .group_by("day")
///     .agg("tput", AggSpec::Mean);
/// let mut st = q.start();
/// q.feed(&mut st, &RowBatch::from_table(&t)).unwrap();
/// let groups = st.finish();
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].1, vec![50.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ColumnarQuery {
    preds: Vec<Pred>,
    key: Option<String>,
    aggs: Vec<(String, AggSpec)>,
}

/// Mutable per-scan state for one [`ColumnarQuery`] run.
pub struct ScanState {
    specs: Vec<AggSpec>,
    interner: KeyInterner,
    groups: GroupedAgg<GroupKey>,
    rows_scanned: u64,
    rows_matched: u64,
}

impl ColumnarQuery {
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep rows where string column `col` equals `needle` (nulls never
    /// match — `Query::filter_eq` semantics). On dictionary batches this
    /// is one dictionary probe plus integer compares.
    pub fn filter_str_eq(mut self, col: &str, needle: &str) -> Self {
        self.preds.push(Pred::StrEq(col.to_string(), needle.to_string()));
        self
    }

    /// Keep rows whose integer `col` lies in `[lo, hi)`; nulls drop.
    pub fn filter_int_range(mut self, col: &str, lo: i64, hi: i64) -> Self {
        self.preds.push(Pred::IntRange(col.to_string(), lo, hi));
        self
    }

    /// Group surviving rows by `col` (at most one group-by column; the
    /// last call wins). Without a group-by all rows fold into one group
    /// keyed [`GroupKey::All`].
    pub fn group_by(mut self, col: &str) -> Self {
        self.key = Some(col.to_string());
        self
    }

    /// Adds an aggregate over `col` (the column is ignored for
    /// [`AggSpec::Count`]).
    pub fn agg(mut self, col: &str, spec: AggSpec) -> Self {
        self.aggs.push((col.to_string(), spec));
        self
    }

    /// Fresh state for one scan (one worker's shard subset).
    pub fn start(&self) -> ScanState {
        let specs: Vec<AggSpec> = self.aggs.iter().map(|&(_, s)| s).collect();
        ScanState {
            specs: specs.clone(),
            interner: KeyInterner::default(),
            groups: GroupedAgg::new(specs),
            rows_scanned: 0,
            rows_matched: 0,
        }
    }

    /// Evaluates the plan over one batch, updating `st`. Strings are never
    /// decoded on dictionary batches: predicates compare codes, and group
    /// keys remap batch codes to interned ids once per batch dictionary.
    pub fn feed(&self, st: &mut ScanState, batch: &RowBatch<'_>) -> Result<(), BqError> {
        st.rows_scanned += batch.rows() as u64;
        let mut sel = SelVec::all(batch.rows());
        for pred in &self.preds {
            if sel.is_empty() {
                break;
            }
            match pred {
                Pred::StrEq(col, needle) => match batch.col("batch", col)? {
                    BatchCol::Dict { dict, codes } => {
                        let code =
                            dict.iter().position(|s| s == needle).map(|p| p as u32);
                        filter_codes_eq(&mut sel, codes, code);
                    }
                    BatchCol::Str(c) => {
                        sel.retain(|r| c[r as usize].as_deref() == Some(needle.as_str()));
                    }
                    other => return Err(type_mismatch(col, ColType::Str, other)),
                },
                Pred::IntRange(col, lo, hi) => match batch.col("batch", col)? {
                    BatchCol::Int(c) => filter_int_range(&mut sel, c, *lo, *hi),
                    BatchCol::IntDense(c) => {
                        sel.retain(|r| (*lo..*hi).contains(&c[r as usize]));
                    }
                    other => return Err(type_mismatch(col, ColType::Int, other)),
                },
            }
        }
        st.rows_matched += sel.len() as u64;
        if sel.is_empty() {
            return Ok(());
        }

        // Resolve the group key per surviving row. Dictionary batches
        // remap their local codes to interner ids once, so the per-row
        // cost is an array index.
        let keys: Vec<GroupKey> = match &self.key {
            None => Vec::new(),
            Some(col) => match batch.col("batch", col)? {
                BatchCol::Dict { dict, codes } => {
                    let remap: Vec<u32> =
                        dict.iter().map(|s| st.interner.intern(s)).collect();
                    sel.rows()
                        .iter()
                        .map(|&r| {
                            let c = codes[r as usize];
                            if c == NULL_CODE {
                                GroupKey::Str(NULL_CODE)
                            } else {
                                GroupKey::Str(remap[c as usize])
                            }
                        })
                        .collect()
                }
                BatchCol::Str(c) => sel
                    .rows()
                    .iter()
                    .map(|&r| match &c[r as usize] {
                        Some(s) => GroupKey::Str(st.interner.intern(s)),
                        None => GroupKey::Str(NULL_CODE),
                    })
                    .collect(),
                BatchCol::Int(c) => {
                    sel.rows().iter().map(|&r| GroupKey::Int(c[r as usize])).collect()
                }
                BatchCol::IntDense(c) => {
                    sel.rows().iter().map(|&r| GroupKey::Int(Some(c[r as usize]))).collect()
                }
                other => return Err(type_mismatch(col, ColType::Str, other)),
            },
        };

        for (j, (col, spec)) in self.aggs.iter().enumerate() {
            let values: Option<&BatchCol> = if matches!(spec, AggSpec::Count) {
                None
            } else {
                Some(batch.col("batch", col)?)
            };
            for (k, &r) in sel.rows().iter().enumerate() {
                let key = if self.key.is_none() { GroupKey::All } else { keys[k].clone() };
                let v = match values {
                    None => None,
                    Some(BatchCol::Float(c)) => c[r as usize],
                    Some(BatchCol::FloatDense(c)) => Some(c[r as usize]),
                    Some(BatchCol::Int(c)) => c[r as usize].map(|v| v as f64),
                    Some(BatchCol::IntDense(c)) => Some(c[r as usize] as f64),
                    Some(other) => return Err(type_mismatch(col, ColType::Float, other)),
                };
                st.groups.accs(&key)[j].push(v);
            }
        }
        // A plan with no aggregates still counts groups (distinct-style).
        if self.aggs.is_empty() {
            for (k, _) in sel.rows().iter().enumerate() {
                let key = if self.key.is_none() { GroupKey::All } else { keys[k].clone() };
                st.groups.accs(&key);
            }
        }
        Ok(())
    }
}

fn type_mismatch(col: &str, expected: ColType, got: &BatchCol<'_>) -> BqError {
    let got = match got {
        BatchCol::Int(_) | BatchCol::IntDense(_) => "Int",
        BatchCol::Float(_) | BatchCol::FloatDense(_) => "Float",
        BatchCol::Dict { .. } => "Str(dict)",
        BatchCol::Str(_) => "Str",
    };
    BqError::TypeMismatch {
        table: "batch".to_string(),
        column: col.to_string(),
        expected,
        got: got.to_string(),
    }
}

impl ScanState {
    /// Folds a sibling worker's state in. Aggregate values are
    /// bit-identical under any fold order; group *listing* order follows
    /// concatenation order (fold shards in manifest order for a
    /// deterministic listing).
    pub fn merge(&mut self, other: ScanState) {
        debug_assert_eq!(self.specs.len(), other.specs.len());
        self.rows_scanned += other.rows_scanned;
        self.rows_matched += other.rows_matched;
        // Remap the sibling's interned string ids into ours before its
        // group keys can be compared with ours.
        let remap: Vec<u32> =
            other.interner.names.iter().map(|s| self.interner.intern(s)).collect();
        let mut remapped = GroupedAgg::new(self.specs.clone());
        for (key, row) in other.groups.finish_into() {
            let key = match key {
                GroupKey::Str(id) if id != NULL_CODE => GroupKey::Str(remap[id as usize]),
                k => k,
            };
            let mine = remapped.accs(&key);
            for (m, t) in mine.iter_mut().zip(row) {
                m.merge(t);
            }
        }
        self.groups.merge(remapped);
    }

    /// Rows fed so far (pre-predicate).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned
    }

    /// Rows surviving all predicates so far.
    pub fn rows_matched(&self) -> u64 {
        self.rows_matched
    }

    /// Peak concurrent group cardinality — the O(groups) memory bound.
    pub fn peak_groups(&self) -> usize {
        self.groups.peak()
    }

    /// Finished groups in first-appearance order: `(key, aggregates)`,
    /// string keys materialized (only here, once per group).
    pub fn finish(&self) -> Vec<(Value, Vec<f64>)> {
        self.groups
            .finish()
            .into_iter()
            .map(|(key, aggs)| {
                let v = match key {
                    GroupKey::All => Value::Null,
                    GroupKey::Int(i) => i.map_or(Value::Null, Value::Int),
                    GroupKey::Str(NULL_CODE) => Value::Null,
                    GroupKey::Str(id) => {
                        Value::Str(self.interner.names[id as usize].clone())
                    }
                };
                (v, aggs)
            })
            .collect()
    }
}

impl<K: Eq + Hash + Clone> GroupedAgg<K> {
    /// Consumes the map in first-appearance order (merge plumbing).
    fn finish_into(mut self) -> Vec<(K, Vec<AggState>)> {
        self.order
            .drain(..)
            .map(|k| {
                let row = self.groups.remove(&k).expect("key listed in order");
                (k, row)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sum_is_order_invariant() {
        let xs = [1e16, 1.0, -1e16, 2.5e-8, 3.0, -7.25];
        let mut fwd = ExactSum::new();
        for &x in &xs {
            fwd.add(x);
        }
        let mut rev = ExactSum::new();
        for &x in xs.iter().rev() {
            rev.add(x);
        }
        assert_eq!(fwd.value().to_bits(), rev.value().to_bits());
        // Split + merge matches too.
        let (mut a, mut b) = (ExactSum::new(), ExactSum::new());
        for &x in &xs[..3] {
            a.add(x);
        }
        for &x in &xs[3..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.value().to_bits(), fwd.value().to_bits());
    }

    #[test]
    fn exact_sum_handles_non_finite() {
        let mut s = ExactSum::new();
        s.add(1.0);
        s.add(f64::INFINITY);
        assert_eq!(s.value(), f64::INFINITY);
        s.add(f64::NEG_INFINITY);
        assert!(s.value().is_nan());
    }

    #[test]
    fn percentile_half_matches_query_median() {
        use crate::{ColType, Table, Value};
        let mut t = Table::new("t", &[("x", ColType::Float)]);
        for v in [10.0, 40.0, 20.0, 30.0] {
            t.push(vec![Value::Float(v)]);
        }
        let mut acc = AggState::new(AggSpec::Percentile(0.5));
        for v in [10.0, 40.0, 20.0, 30.0] {
            acc.push(Some(v));
        }
        assert_eq!(acc.finish().to_bits(), t.query().median("x").to_bits());
    }

    #[test]
    fn columnar_query_matches_materialized_query() {
        use crate::{ColType, Table, Value};
        let mut t = Table::new("t", &[
            ("day", ColType::Int),
            ("oblast", ColType::Str),
            ("tput", ColType::Float),
        ]);
        t.dict_encode("oblast");
        let rows: &[(i64, Option<&str>, Option<f64>)] = &[
            (419, Some("Kiev City"), Some(50.0)),
            (419, Some("L'viv"), Some(37.2)),
            (420, Some("Kiev City"), Some(30.0)),
            (420, None, Some(9.0)),
            (421, Some("Kiev City"), None),
        ];
        for &(d, o, v) in rows {
            t.push(vec![
                Value::Int(d),
                o.map_or(Value::Null, Value::from),
                v.map_or(Value::Null, Value::Float),
            ]);
        }

        let plan = ColumnarQuery::new()
            .filter_str_eq("oblast", "Kiev City")
            .group_by("day")
            .agg("tput", AggSpec::Count)
            .agg("tput", AggSpec::Mean);
        let mut st = plan.start();
        plan.feed(&mut st, &RowBatch::from_table(&t)).expect("feed");
        let got = st.finish();

        let reference: Vec<(Value, Vec<f64>)> = t
            .query()
            .filter_eq("oblast", &Value::from("Kiev City"))
            .group_by("day")
            .into_iter()
            .map(|(k, q)| {
                let mean = q.mean("tput");
                (k, vec![q.count() as f64, mean])
            })
            .collect();
        assert_eq!(got.len(), reference.len());
        for ((gk, ga), (rk, ra)) in got.iter().zip(&reference) {
            assert_eq!(gk, rk);
            assert_eq!(ga[0], ra[0]);
            // Mean may be NaN on both sides for the empty day-421 group.
            assert!(ga[1] == ra[1] || (ga[1].is_nan() && ra[1].is_nan()));
        }
        assert_eq!(st.rows_scanned(), 5);
        assert_eq!(st.rows_matched(), 3);
        assert_eq!(st.peak_groups(), 3);
    }

    #[test]
    fn absent_needle_clears_without_decoding() {
        use crate::{ColType, Table, Value};
        let mut t = Table::new("t", &[("oblast", ColType::Str), ("x", ColType::Float)]);
        t.dict_encode("oblast");
        t.push(vec![Value::from("Kharkiv"), Value::Float(1.0)]);
        let plan =
            ColumnarQuery::new().filter_str_eq("oblast", "Atlantis").agg("x", AggSpec::Count);
        let mut st = plan.start();
        plan.feed(&mut st, &RowBatch::from_table(&t)).expect("feed");
        assert_eq!(st.rows_matched(), 0);
        assert!(st.finish().is_empty());
    }

    #[test]
    fn shard_merge_is_order_invariant_for_values() {
        let plan = ColumnarQuery::new().group_by("k").agg("v", AggSpec::Sum);
        let shard = |vals: &[(i64, f64)]| {
            let ks: Vec<Option<i64>> = vals.iter().map(|&(k, _)| Some(k)).collect();
            let vs: Vec<Option<f64>> = vals.iter().map(|&(_, v)| Some(v)).collect();
            let mut st = plan.start();
            let b = RowBatch::new(vals.len())
                .with("k", BatchCol::Int(&ks))
                .with("v", BatchCol::Float(&vs));
            plan.feed(&mut st, &b).expect("feed");
            st
        };
        let a = [(1, 1e16), (2, 2.0)];
        let b = [(1, 1.0), (2, -2.0)];
        let c = [(1, -1e16), (3, 0.125)];

        let mut ab_c = shard(&a);
        ab_c.merge(shard(&b));
        ab_c.merge(shard(&c));
        let mut a_bc = shard(&a);
        let mut bc = shard(&b);
        bc.merge(shard(&c));
        a_bc.merge(bc);

        let (x, y) = (ab_c.finish(), a_bc.finish());
        assert_eq!(x.len(), y.len());
        for ((kx, vx), (ky, vy)) in x.iter().zip(&y) {
            assert_eq!(kx, ky);
            assert_eq!(vx[0].to_bits(), vy[0].to_bits());
        }
    }
}
