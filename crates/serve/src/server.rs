//! The in-process server core: bounded admission, deadline propagation,
//! panic isolation, single-flight caching, graceful drain.
//!
//! The core is transport-agnostic — [`ServerHandle::submit`] is the whole
//! request path, and [`crate::net`] is a thin line-protocol front over it —
//! so every overload behaviour is testable deterministically without
//! sockets or timing-sensitive client fleets.
//!
//! Life of a request (`submit`):
//!
//! 1. **Admission.** A draining server rejects with [`ServeError::Draining`];
//!    an unknown stage with [`ServeError::UnknownStage`]. Both are decided
//!    before any queue slot is consumed.
//! 2. **Cache / single-flight.** With caching on, the request key
//!    (`<config fingerprint>/<stage>`) is looked up: a hit returns the
//!    cached `Arc<str>` (byte-identical to the cold response by
//!    construction); a concurrent duplicate waits for the in-flight
//!    leader instead of queuing twice; a miss makes this request the
//!    leader and proceeds.
//! 3. **Enqueue.** `try_send` into a fixed-capacity [`mpsc::sync_channel`].
//!    A full queue sheds the request *immediately* and deterministically —
//!    [`ServeError::Overloaded`] with a retry-after hint — rather than
//!    letting latency grow without bound. Shedding a leader also fails its
//!    cache lease so single-flight waiters see the same typed rejection.
//! 4. **Execution.** A worker dequeues the job, charges the time it spent
//!    queued against its deadline (a request that expired while queued
//!    fails without executing), and runs the stage under
//!    [`ndt_runner::run_isolated`] with the *remaining* budget: the
//!    executor's `catch_unwind` contains panics to this request, its
//!    deadline abandons hung stages, and its [`CancelToken`] guarantees an
//!    abandoned request can never commit a late result.
//!
//! [`Server::drain`] closes admission, lets the workers finish every
//! queued and in-flight request (their replies are still delivered), joins
//! the workers, and returns the final [`ServeStats`].
//!
//! All `serve.*` observability lives in the **process** namespace: the
//! numbers depend on thread scheduling and offered load, so they sit
//! outside the deterministic-metrics contract (`DESIGN.md` §15). Tests
//! assert on per-server [`ServeStats`] instead of global counters.
//!
//! [`CancelToken`]: ndt_runner::CancelToken

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ndt_analysis::{run_analysis_stage, stage_spec, StudyData};
use ndt_runner::{run_isolated, ExecPolicy, RetryPolicy, StageError, StageFault};

use crate::cache::{Cache, Lease, Lookup};

/// Fixed retry-after hint attached to shed responses. Deterministic by
/// design: clients back off by the same amount regardless of load, which
/// keeps loadgen runs reproducible.
pub const RETRY_AFTER: Duration = Duration::from_millis(100);

/// Grace added to the submitter's reply wait beyond the request deadline.
/// The worker bounds execution by the remaining budget, so the reply
/// normally arrives well inside the deadline; the grace only covers
/// scheduling slop between the executor giving up and the reply landing.
const REPLY_GRACE: Duration = Duration::from_secs(2);

/// Why a request did not produce a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The requested stage is not in [`ndt_analysis::ANALYSIS_STAGES`].
    UnknownStage(String),
    /// The admission queue was full; retry after the hinted delay.
    Overloaded {
        /// How long the client should wait before retrying.
        retry_after: Duration,
    },
    /// The server is shutting down and no longer admits requests.
    Draining,
    /// The request's deadline expired — in the queue, waiting on a
    /// single-flight leader, or mid-execution.
    DeadlineExceeded,
    /// The stage body panicked; the server survives, this request fails.
    Panicked(String),
    /// The stage reported an error (degenerate data, store fault).
    Failed(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownStage(s) => write!(f, "unknown stage '{s}'"),
            ServeError::Overloaded { retry_after } => {
                write!(f, "overloaded; retry after {}ms", retry_after.as_millis())
            }
            ServeError::Draining => write!(f, "server draining"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Panicked(msg) => write!(f, "stage panicked: {msg}"),
            ServeError::Failed(msg) => write!(f, "stage failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Server tuning knobs and test hooks.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing dequeued requests.
    pub workers: usize,
    /// Admission queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Whether to cache responses (and single-flight duplicate misses).
    pub cache: bool,
    /// Test hook: make every executed stage sleep this long first
    /// (cooperatively — it stands down when cancelled). The CLI fills
    /// this from `UKRAINE_NDT_SERVE_STALL_MS`.
    pub stall: Option<Duration>,
    /// Test hook: stages whose name starts with any of these prefixes
    /// panic instead of executing. The CLI fills this from
    /// `UKRAINE_NDT_PANIC_STAGE`.
    pub panic_stages: Vec<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(5),
            cache: true,
            stall: None,
            panic_stages: Vec::new(),
        }
    }
}

/// Snapshot of one server's request accounting (mirrored to the
/// process-namespace `serve.*` counters for the metrics artifact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests rejected because the queue was full.
    pub shed: u64,
    /// Requests rejected because the server was draining.
    pub draining_rejects: u64,
    /// Stage executions that ran to completion.
    pub executed: u64,
    /// Requests answered from the cache without queuing.
    pub cache_hits: u64,
    /// Duplicate requests that waited on an in-flight leader.
    pub singleflight_waits: u64,
    /// Requests that failed on deadline (queued, waiting, or executing).
    pub timeouts: u64,
    /// Requests whose stage body panicked (contained).
    pub panics: u64,
    /// Requests whose stage reported a failure.
    pub failures: u64,
    /// Peak queue depth observed.
    pub queue_depth_peak: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    draining_rejects: AtomicU64,
    executed: AtomicU64,
    cache_hits: AtomicU64,
    singleflight_waits: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    failures: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
}

impl Counters {
    /// Bumps a per-server counter and its process-namespace mirror.
    fn bump(&self, field: &AtomicU64, name: &str) {
        field.fetch_add(1, Ordering::Relaxed);
        ndt_obs::incr_process(name, 1);
    }

    fn snapshot(&self) -> ServeStats {
        ServeStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            draining_rejects: self.draining_rejects.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            singleflight_waits: self.singleflight_waits.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
        }
    }
}

/// One queued request: what to run, when its clock started, how much
/// budget it has, where the response goes, and (when it is a cache
/// leader) the lease it must settle.
struct Job {
    stage: &'static str,
    admitted: Instant,
    deadline: Duration,
    reply: mpsc::Sender<Result<Arc<str>, ServeError>>,
    lease: Option<Lease>,
}

struct Inner {
    data: Arc<StudyData>,
    fingerprint: u64,
    cfg: ServeConfig,
    cache: Cache,
    counters: Counters,
    draining: AtomicBool,
    /// `None` once drain has closed admission; dropping the sender is
    /// what lets the workers' `recv` disconnect after the queue empties.
    queue: Mutex<Option<SyncSender<Job>>>,
}

/// A running server: owns the worker threads; [`Server::drain`] consumes
/// it. Request submission goes through cloneable [`ServerHandle`]s.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
}

/// Cheap cloneable submission handle onto a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl Server {
    /// Boots `cfg.workers` worker threads over the given corpus.
    /// `fingerprint` is the store's config fingerprint — it keys the
    /// response cache, so two servers over different configs can never
    /// share entries.
    pub fn start(data: Arc<StudyData>, fingerprint: u64, cfg: ServeConfig) -> Server {
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let inner = Arc::new(Inner {
            data,
            fingerprint,
            cfg,
            cache: Cache::new(),
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            queue: Mutex::new(Some(tx)),
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers, started: Instant::now() }
    }

    /// A new submission handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { inner: Arc::clone(&self.inner) }
    }

    /// Graceful shutdown: stop admitting (new submissions get
    /// [`ServeError::Draining`]), finish every queued and in-flight
    /// request — their replies are still delivered — then join the
    /// workers and return the final stats. Also flushes the
    /// `serve.queue_depth_peak` / `serve.lifetime_ms` process gauges.
    pub fn drain(self) -> ServeStats {
        self.inner.draining.store(true, Ordering::SeqCst);
        // Drop the sender: workers drain what is queued, then their
        // recv disconnects and they exit.
        drop(self.inner.queue.lock().unwrap_or_else(|p| p.into_inner()).take());
        for w in self.workers {
            let _ = w.join();
        }
        let stats = self.inner.counters.snapshot();
        ndt_obs::set_process("serve.queue_depth_peak", stats.queue_depth_peak);
        ndt_obs::set_process(
            "serve.lifetime_ms",
            self.started.elapsed().as_millis() as u64,
        );
        stats
    }
}

impl ServerHandle {
    /// Submits one request and blocks for its response. `deadline` is the
    /// request's total wall-clock budget starting now — queue wait,
    /// single-flight wait and execution all charge against it; `None`
    /// uses the server default.
    pub fn submit(
        &self,
        stage: &str,
        deadline: Option<Duration>,
    ) -> Result<Arc<str>, ServeError> {
        let inner = &self.inner;
        let deadline = deadline.unwrap_or(inner.cfg.default_deadline);
        if inner.draining.load(Ordering::SeqCst) {
            inner.counters.bump(&inner.counters.draining_rejects, "serve.draining_rejects");
            return Err(ServeError::Draining);
        }
        let spec = stage_spec(stage)
            .ok_or_else(|| ServeError::UnknownStage(stage.to_string()))?;

        let mut lease = None;
        if inner.cfg.cache {
            let key = format!("{:016x}/{}", inner.fingerprint, spec.name);
            match inner.cache.lookup(&key) {
                Lookup::Hit(body) => {
                    inner.counters.bump(&inner.counters.cache_hits, "serve.cache_hits");
                    return Ok(body);
                }
                Lookup::Wait => {
                    inner
                        .counters
                        .bump(&inner.counters.singleflight_waits, "serve.singleflight_waits");
                    return match inner.cache.wait(&key, deadline) {
                        Err(ServeError::DeadlineExceeded) => {
                            inner.counters.bump(&inner.counters.timeouts, "serve.timeouts");
                            Err(ServeError::DeadlineExceeded)
                        }
                        other => other,
                    };
                }
                Lookup::Lease(l) => lease = Some(l),
            }
        }

        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            stage: spec.name,
            admitted: Instant::now(),
            deadline,
            reply: reply_tx,
            lease,
        };
        {
            let guard = inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            let Some(tx) = guard.as_ref() else {
                // Drain raced us between the flag check and here.
                if let Some(l) = job.lease {
                    l.fail(ServeError::Draining);
                }
                inner.counters.bump(&inner.counters.draining_rejects, "serve.draining_rejects");
                return Err(ServeError::Draining);
            };
            // Count the depth *before* the send: the worker decrements
            // at dequeue, which can only happen after a successful send,
            // so the counter can never go below zero.
            let depth = inner.counters.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
            inner.counters.queue_depth_peak.fetch_max(depth, Ordering::SeqCst);
            match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    // Deterministic load shed: the queue bound, not
                    // latency collapse, is what absorbs overload.
                    inner.counters.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    let err = ServeError::Overloaded { retry_after: RETRY_AFTER };
                    if let Some(l) = job.lease {
                        l.fail(err.clone());
                    }
                    inner.counters.bump(&inner.counters.shed, "serve.shed");
                    return Err(err);
                }
                Err(TrySendError::Disconnected(job)) => {
                    inner.counters.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    if let Some(l) = job.lease {
                        l.fail(ServeError::Draining);
                    }
                    inner
                        .counters
                        .bump(&inner.counters.draining_rejects, "serve.draining_rejects");
                    return Err(ServeError::Draining);
                }
            }
        }
        inner.counters.bump(&inner.counters.accepted, "serve.accepted");

        match reply_rx.recv_timeout(deadline + REPLY_GRACE) {
            Ok(result) => result,
            Err(_) => {
                // Worker never replied inside deadline + grace (only
                // plausible under extreme scheduling starvation).
                inner.counters.bump(&inner.counters.timeouts, "serve.timeouts");
                Err(ServeError::DeadlineExceeded)
            }
        }
    }

    /// Whether the server has begun draining.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Current stats snapshot.
    pub fn stats(&self) -> ServeStats {
        self.inner.counters.snapshot()
    }
}

fn worker_loop(inner: &Inner, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let job = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        let Ok(job) = job else {
            return; // Sender dropped by drain and queue empty: exit.
        };
        inner.counters.queue_depth.fetch_sub(1, Ordering::SeqCst);
        execute(inner, job);
    }
}

/// Runs one dequeued job: charges queue wait against the deadline, then
/// executes the stage under the runner's isolation, settles the cache
/// lease and delivers the reply.
fn execute(inner: &Inner, job: Job) {
    let remaining = job.deadline.saturating_sub(job.admitted.elapsed());
    if remaining.is_zero() {
        // Expired while queued: fail without executing. This is the
        // queue-wait half of deadline propagation.
        inner.counters.bump(&inner.counters.timeouts, "serve.timeouts");
        settle(inner, job, Err(ServeError::DeadlineExceeded));
        return;
    }

    let _span = ndt_obs::span("serve.request");
    let policy = ExecPolicy { deadline: remaining, retry: RetryPolicy::NONE };
    let data = Arc::clone(&inner.data);
    let stage = job.stage;
    let stall = inner.cfg.stall;
    let panic_me = inner.cfg.panic_stages.iter().any(|p| stage.starts_with(p.as_str()));
    let result = run_isolated(stage, &policy, move |cancel| {
        if panic_me {
            panic!("injected panic in serve stage {stage}");
        }
        if let Some(stall) = stall {
            // Cooperative stall so an abandoned attempt exits promptly.
            let until = Instant::now() + stall;
            while Instant::now() < until {
                if cancel.is_cancelled() {
                    return Err(StageFault::permanent("cancelled during stall"));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        if cancel.is_cancelled() {
            return Err(StageFault::permanent("cancelled before execution"));
        }
        let out = run_analysis_stage(stage, &data)
            .map_err(|e| StageFault::permanent(e.to_string()))?;
        // The response is the report fragment exactly as `report` prints
        // it: section header + body. Byte-stable across runs, so cache
        // hits are byte-identical to recomputation as well.
        let title = stage_spec(stage).map(|s| s.title).unwrap_or(stage);
        Ok(format!("== {title} ==\n{}", out.section))
    });

    let outcome = match result {
        Ok(body) => {
            inner.counters.bump(&inner.counters.executed, "serve.executed");
            Ok(Arc::<str>::from(body))
        }
        Err(StageError::Panicked(msg)) => {
            inner.counters.bump(&inner.counters.panics, "serve.panics");
            Err(ServeError::Panicked(msg))
        }
        Err(StageError::DeadlineExceeded(_)) => {
            inner.counters.bump(&inner.counters.timeouts, "serve.timeouts");
            Err(ServeError::DeadlineExceeded)
        }
        Err(StageError::Failed(msg)) => {
            inner.counters.bump(&inner.counters.failures, "serve.failures");
            Err(ServeError::Failed(msg))
        }
    };
    settle(inner, job, outcome);
}

/// Settles the job's cache lease (leader requests only) and delivers the
/// reply. A submitter that already gave up just drops the receiver; the
/// failed send is harmless — the executor's cancel token has already
/// made sure no late result was committed anywhere durable.
fn settle(_inner: &Inner, job: Job, outcome: Result<Arc<str>, ServeError>) {
    if let Some(lease) = job.lease {
        match &outcome {
            Ok(body) => lease.fulfill(Arc::clone(body)),
            Err(e) => lease.fail(e.clone()),
        }
    }
    let _ = job.reply.send(outcome);
}
