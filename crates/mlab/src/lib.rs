//! # ndt-mlab
//!
//! M-Lab platform simulator for the `ukraine-ndt` reproduction of *"The
//! Ukrainian Internet Under Attack: an NDT Perspective"* (IMC '22).
//!
//! This crate is the generative heart of the reproduction. It models the
//! measurement platform the paper's data came from:
//!
//! * **Sites** ([`site`]) — 210 M-Lab sites in 47 countries (none in
//!   Ukraine or Russia), each inside a hosting AS wired into the
//!   `ndt-topology` graph, with a geographic **load balancer** that sends
//!   each client to its nearest metro and pins it to one site there (so a
//!   client forms a stable (client IP, server IP) *connection*, the §5.1
//!   unit of analysis);
//! * **Clients** ([`client`]) — per-(oblast × city × AS) populations with
//!   persistent addresses, heavy-tailed per-client test rates (a small core
//!   of frequent testers accumulates the ~100–200 tests/connection the
//!   paper's Table 2 reports for its top-1000 connections), and per-client
//!   last-mile characteristics calibrated against Table 4's prewar values;
//! * **Tests** ([`sim`]) — for every simulated day, each client runs a
//!   Poisson number of NDT downloads modulated by displacement, AS-specific
//!   behaviour and outage-day curiosity spikes; each test selects a route
//!   through the topology, runs the `ndt-tcp` transfer over the combined
//!   core+edge path characteristics, is geolocated through the error-prone
//!   `ndt-geo` database, and emits two rows ([`schema`]): one in the
//!   `unified_download` shape (§4's dataset) and one scamper traceroute
//!   row (§5's dataset);
//! * **War** — each day the simulator applies the `ndt-conflict` damage:
//!   per-oblast/per-AS degradation of the edge, border-AS decay and flaps
//!   (Cogent fade-out, AS6663 collapse), and the March 10 transit outages.
//!
//! Everything is deterministic under [`SimConfig::seed`]. The full-scale
//! 2021+2022 dataset (~1M raw tests) generates in seconds; tests and CI use
//! a reduced [`SimConfig::scale`].

pub mod client;
pub mod codec;
pub mod columnar;
pub mod fault;
pub mod schema;
pub mod sim;
pub mod site;

pub use client::{Client, ClientPool};
pub use codec::CodecError;
pub use fault::{Corruption, FaultPlan};
pub use schema::{Dataset, Scamper1Row, UnifiedDownloadRow};
pub use sim::{Scenario, SimConfig, SimCounters, Simulator};
pub use site::{LoadBalancer, Site, SiteId};
