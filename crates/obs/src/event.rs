//! The structured event log.
//!
//! [`log`] is the single sink behind the [`error!`](crate::error),
//! [`warn!`](crate::warn), [`info!`](crate::info) and
//! [`debug!`](crate::debug) macros. Each event carries a [`Level`]; events
//! at or above the global verbosity go to stderr *verbatim* (no prefix is
//! added, so messages the test suite pins — `[runner] stage x: computed` —
//! are byte-identical to the old raw `eprintln!` output), and when metrics
//! are enabled every event is additionally buffered into the registry so
//! the `--metrics` artifact includes the run's event log.
//!
//! The default verbosity is [`Level::Info`]; the CLI maps `--quiet` to
//! [`Level::Warn`] and `--verbose` to [`Level::Debug`].

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// A stage failed or data was lost.
    Error = 0,
    /// Degraded but recoverable: retries, contained panics, dropped rows.
    Warn = 1,
    /// Normal progress reporting (the default verbosity).
    Info = 2,
    /// Detail useful only when tracing a run.
    Debug = 3,
}

impl Level {
    /// Lowercase label used in the artifact's event log.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global stderr verbosity threshold.
pub fn set_verbosity(level: Level) {
    VERBOSITY.store(level as u8, Ordering::Relaxed);
}

/// The current stderr verbosity threshold.
pub fn verbosity() -> Level {
    Level::from_u8(VERBOSITY.load(Ordering::Relaxed))
}

/// Emits one event: stderr if `level` passes the verbosity filter, plus
/// the registry's event buffer when metrics are enabled. Prefer the
/// level macros over calling this directly.
pub fn log(level: Level, args: fmt::Arguments<'_>) {
    let to_stderr = level <= verbosity();
    let to_buffer = crate::enabled();
    if !to_stderr && !to_buffer {
        return;
    }
    let message = fmt::format(args);
    if to_stderr {
        eprintln!("{message}");
    }
    if to_buffer {
        crate::global().record_event(level, message);
    }
}

/// Logs an [`Level::Error`] event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log($crate::Level::Error, format_args!($($arg)*)) };
}

/// Logs a [`Level::Warn`] event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log($crate::Level::Warn, format_args!($($arg)*)) };
}

/// Logs a [`Level::Info`] event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log($crate::Level::Info, format_args!($($arg)*)) };
}

/// Logs a [`Level::Debug`] event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log($crate::Level::Debug, format_args!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn labels_are_lowercase() {
        assert_eq!(Level::Error.label(), "error");
        assert_eq!(Level::Debug.label(), "debug");
    }

    #[test]
    fn verbosity_roundtrips() {
        let before = verbosity();
        set_verbosity(Level::Debug);
        assert_eq!(verbosity(), Level::Debug);
        set_verbosity(Level::Warn);
        assert_eq!(verbosity(), Level::Warn);
        set_verbosity(before);
    }
}
