//! Plain-text table and CSV rendering for analysis results.

/// Renders rows of cells as an aligned monospace table with a header.
///
/// # Panics
/// Panics if any row's arity differs from the header's.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), header.len(), "row arity mismatch");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a CSV document (no quoting needed: cells are numeric/simple).
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a signed percentage like the paper's Table 3 ("+16.45%").
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

/// Formats a multiplicative ratio like the paper's loss column ("1.58x").
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = text_table(
            &["name", "n"],
            &[vec!["Kyiv".into(), "10023".into()], vec!["L'viv".into(), "7".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("10023"));
        assert!(lines[3].ends_with("    7"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_ragged_rows() {
        text_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn csv_shape() {
        let c = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1645), "+16.45%");
        assert_eq!(pct(-0.3662), "-36.62%");
        assert_eq!(times(1.58), "1.58x");
    }
}
