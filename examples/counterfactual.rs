//! Counterfactual runs: the same platform without the war, with edge-only
//! damage, and with core-only damage — the quantitative version of the
//! paper's §5 hypothesis that "most of the performance instability occurs
//! due to damage at the edge of the network".
//!
//! ```sh
//! cargo run --release --example counterfactual
//! ```

use ukraine_ndt::analysis::{table1_cities, table2_paths};
use ukraine_ndt::mlab::Scenario;
use ukraine_ndt::prelude::*;

fn main() {
    let scenarios = [
        ("historical", Scenario::HISTORICAL),
        ("no-war", Scenario::NO_WAR),
        ("edge-only", Scenario::EDGE_ONLY),
        ("core-only", Scenario::CORE_ONLY),
    ];
    println!("scenario     loss ratio   tput ratio   rtt ratio   d(paths/conn)");
    println!("----------------------------------------------------------------");
    for (name, scenario) in scenarios {
        let data = StudyData::generate(SimConfig {
            scale: 0.12,
            seed: 404,
            scenario,
            simulate_2021: false,
            ..SimConfig::default()
        });
        let t1 = table1_cities::compute(&data).expect("clean corpus computes");
        let n = t1.row("National").expect("national row");
        let t2 = table2_paths::compute(&data, 1000).expect("clean corpus computes");
        let d_paths = t2.row(Period::Wartime2022).paths_per_conn
            - t2.row(Period::Prewar2022).paths_per_conn;
        println!(
            "{name:<12} {:>9.2}x {:>11.2}x {:>10.2}x {:>14.2}",
            n.loss_wartime / n.loss_prewar,
            n.tput_wartime / n.tput_prewar,
            n.min_rtt_wartime / n.min_rtt_prewar,
            d_paths,
        );
    }
    println!();
    println!("Reading: the edge-only run reproduces most of the historical loss/tput/RTT");
    println!("degradation; the core-only run carries the path-diversity jump. Damage to");
    println!("the edge degrades users, damage to the core reroutes them — the separation");
    println!("the paper could only hypothesize about (§5, §7).");
}
