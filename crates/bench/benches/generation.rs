//! Workload-generation benches: the cost of building the world and of
//! producing the measurement corpus itself.

use criterion::{criterion_group, criterion_main, Criterion};
use ndt_analysis::StudyData;
use ndt_mlab::{SimConfig, Simulator};
use ndt_topology::{build_topology, TopologyConfig};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));

    g.bench_function("build_topology", |b| {
        b.iter(|| black_box(build_topology(black_box(&TopologyConfig::default()))))
    });
    g.bench_function("platform_setup", |b| {
        b.iter(|| black_box(Simulator::new(SimConfig { scale: 0.02, ..SimConfig::default() })))
    });
    g.bench_function("simulate_corpus_scale_0.02", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SimConfig { scale: 0.02, seed: 9, ..SimConfig::default() });
            black_box(sim.run())
        })
    });
    g.bench_function("ingest_to_bq_scale_0.02", |b| {
        let mut sim = Simulator::new(SimConfig { scale: 0.02, seed: 9, ..SimConfig::default() });
        let ds = sim.run();
        b.iter(|| black_box(StudyData::from_dataset(black_box(ds.clone()))))
    });
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
