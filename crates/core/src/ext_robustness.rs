//! Extension: nonparametric robustness check of Table 1's stars.
//!
//! Appendix B of the paper justifies Welch's t-test but concedes that the
//! metric samples are "slightly skewed", so "the lack of normality in the
//! samples could be considered a limitation of the statistical tests."
//! This extension quantifies that limitation: every Table 1 comparison is
//! re-run with the Mann–Whitney U test, which assumes no distribution at
//! all. Where the two tests agree, the paper's conclusion did not hinge on
//! normality.

use crate::coverage::{metric_samples, Coverage};
use crate::dataset::StudyData;
use crate::error::AnalysisError;
use crate::render::text_table;
use ndt_bq::Query;
use ndt_conflict::Period;
use ndt_geo::city::KEY_CITIES;
use ndt_stats::{jarque_bera, mann_whitney_u, welch_t_test, JarqueBera, MannWhitney, WelchTTest};
use serde::{Deserialize, Serialize};

/// One metric's pair of tests plus the normality diagnostic that motivates
/// running both.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestPair {
    pub welch: WelchTTest,
    pub mann_whitney: MannWhitney,
    /// Jarque–Bera on the pooled prewar+wartime sample (Appendix B asks
    /// whether the metric is normal at all).
    pub normality: JarqueBera,
}

impl TestPair {
    /// Whether both tests land on the same side of the 0.05 threshold.
    pub fn agree(&self) -> bool {
        self.welch.significant() == self.mann_whitney.significant()
    }
}

/// One city's (or the national) row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    pub name: String,
    pub min_rtt: TestPair,
    pub tput: TestPair,
    pub loss: TestPair,
}

/// The robustness table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Robustness {
    pub rows: Vec<RobustnessRow>,
    /// Degradation accounting: corrupt metric values are excluded from both
    /// tests' samples and tallied here.
    pub coverage: Coverage,
}

fn pair(
    pre: &Query<'_>,
    war: &Query<'_>,
    col: &str,
    cov: &mut Coverage,
) -> Result<TestPair, AnalysisError> {
    let a = metric_samples(pre, col, true, cov)?;
    let b = metric_samples(war, col, true, cov)?;
    let mut pooled = a.clone();
    pooled.extend_from_slice(&b);
    Ok(TestPair {
        welch: welch_t_test(&a, &b),
        mann_whitney: mann_whitney_u(&a, &b),
        normality: jarque_bera(&pooled),
    })
}

/// Runs both tests on every Table 1 slice.
pub fn compute(data: &StudyData) -> Result<Robustness, AnalysisError> {
    let mut cov = Coverage::new();
    let mut rows = Vec::new();
    let mut push = |name: &str, pre: Query<'_>, war: Query<'_>, cov: &mut Coverage| {
        cov.see(pre.count() + war.count());
        cov.note_sample(name, pre.count().min(war.count()));
        rows.push(RobustnessRow {
            name: name.to_string(),
            min_rtt: pair(&pre, &war, "min_rtt", cov)?,
            tput: pair(&pre, &war, "tput", cov)?,
            loss: pair(&pre, &war, "loss", cov)?,
        });
        Ok::<(), AnalysisError>(())
    };
    for city in KEY_CITIES {
        push(
            city,
            data.city_period(city, Period::Prewar2022),
            data.city_period(city, Period::Wartime2022),
            &mut cov,
        )?;
    }
    push("National", data.period(Period::Prewar2022), data.period(Period::Wartime2022), &mut cov)?;
    Ok(Robustness { rows, coverage: cov })
}

impl Robustness {
    /// Row by name.
    pub fn row(&self, name: &str) -> Option<&RobustnessRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Fraction of metric cells where the two tests agree.
    pub fn agreement(&self) -> f64 {
        let cells: Vec<bool> = self
            .rows
            .iter()
            .flat_map(|r| [r.min_rtt.agree(), r.tput.agree(), r.loss.agree()])
            .collect();
        cells.iter().filter(|&&a| a).count() as f64 / cells.len() as f64
    }

    /// Aligned text rendering.
    pub fn render(&self) -> String {
        let star = |sig: bool| if sig { "*" } else { "ns" };
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{}/{}", star(r.min_rtt.welch.significant()), star(r.min_rtt.mann_whitney.significant())),
                    format!("{}/{}", star(r.tput.welch.significant()), star(r.tput.mann_whitney.significant())),
                    format!("{}/{}", star(r.loss.welch.significant()), star(r.loss.mann_whitney.significant())),
                    format!("{:+.2}", r.tput.normality.skewness),
                    format!("{:+.2}", r.loss.normality.skewness),
                ]
            })
            .collect();
        let mut out =
            text_table(&["", "RTT W/MW", "Tput W/MW", "Loss W/MW", "TputSkew", "LossSkew"], &rows);
        out.push_str(&format!("\nagreement: {:.0}%\n", self.agreement() * 100.0));
        out.push_str(&self.coverage.footer());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_support::shared_medium;
    use std::sync::OnceLock;

    fn rb() -> &'static Robustness {
        static R: OnceLock<Robustness> = OnceLock::new();
        R.get_or_init(|| compute(shared_medium()).expect("clean corpus computes"))
    }

    #[test]
    fn welch_stars_survive_the_rank_test() {
        // The headline cells must not hinge on normality.
        let r = rb();
        let national = r.row("National").unwrap();
        assert!(national.loss.welch.significant() && national.loss.mann_whitney.significant());
        assert!(national.min_rtt.welch.significant() && national.min_rtt.mann_whitney.significant());
        let kyiv = r.row("Kyiv").unwrap();
        assert!(kyiv.loss.mann_whitney.significant());
    }

    #[test]
    fn overall_agreement_is_high() {
        let a = rb().agreement();
        assert!(a >= 0.8, "agreement = {a}");
    }

    #[test]
    fn metrics_are_skewed_as_appendix_b_observes() {
        // "the other metrics are slightly skewed": throughput and loss are
        // right-skewed and fail the normality test at national scale —
        // which is exactly why the rank-test robustness check matters.
        let national = rb().row("National").unwrap();
        assert!(national.tput.normality.skewness > 0.3, "tput skew = {}", national.tput.normality.skewness);
        assert!(national.loss.normality.skewness > 0.5, "loss skew = {}", national.loss.normality.skewness);
        assert!(national.loss.normality.non_normal());
    }

    #[test]
    fn renders_with_both_verdicts() {
        let s = rb().render();
        assert!(s.contains("W/MW"));
        assert!(s.contains("agreement:"));
    }
}
