//! Property-based tests: the query algebra behaves like relational algebra.

use ndt_bq::{ColType, Table, Value};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec((0i64..5, 0u8..4, prop::option::of(-100.0..100.0f64)), 0..120).prop_map(
        |rows| {
            let mut t = Table::new(
                "t",
                &[("k", ColType::Int), ("g", ColType::Str), ("x", ColType::Float)],
            );
            for (k, g, x) in rows {
                t.push(vec![
                    Value::Int(k),
                    Value::from(format!("g{g}")),
                    x.map(Value::Float).unwrap_or(Value::Null),
                ]);
            }
            t
        },
    )
}

proptest! {
    /// Group-by partitions the selection: group sizes sum to the total and
    /// every row lands in exactly one group.
    #[test]
    fn group_by_partitions(t in arb_table()) {
        let q = t.query();
        let groups = q.group_by("g");
        let total: usize = groups.iter().map(|(_, g)| g.count()).sum();
        prop_assert_eq!(total, q.count());
        let mut seen = std::collections::HashSet::new();
        for (_, g) in &groups {
            for &i in g.indices() {
                prop_assert!(seen.insert(i), "row {i} in two groups");
            }
        }
    }

    /// Filtering is idempotent and anti-monotone in selectivity.
    #[test]
    fn filter_idempotent(t in arb_table(), lo in 0i64..5) {
        let once = t.query().filter_int_range("k", lo, 5);
        let twice = t.query().filter_int_range("k", lo, 5).filter_int_range("k", lo, 5);
        prop_assert_eq!(once.indices(), twice.indices());
        prop_assert!(once.count() <= t.len());
    }

    /// Filter order commutes.
    #[test]
    fn filters_commute(t in arb_table(), lo in 0i64..5, g in 0u8..4) {
        let gv = Value::from(format!("g{g}"));
        let a = t.query().filter_int_range("k", lo, 5).filter_eq("g", &gv);
        let b = t.query().filter_eq("g", &gv).filter_int_range("k", lo, 5);
        prop_assert_eq!(a.indices(), b.indices());
    }

    /// Sum distributes over the groups of any partition.
    #[test]
    fn sum_distributes_over_groups(t in arb_table()) {
        let q = t.query();
        let total = q.sum("x");
        let by_group: f64 = q.group_by("g").iter().map(|(_, g)| g.sum("x")).sum();
        prop_assert!((total - by_group).abs() < 1e-6 * (1.0 + total.abs()));
    }

    /// Aggregates stay within the data's bounds.
    #[test]
    fn aggregate_bounds(t in arb_table()) {
        let q = t.query();
        let xs = q.floats("x");
        if !xs.is_empty() {
            let mn = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(q.mean("x") >= mn - 1e-9 && q.mean("x") <= mx + 1e-9);
            prop_assert!(q.median("x") >= mn - 1e-9 && q.median("x") <= mx + 1e-9);
            prop_assert_eq!(q.min("x"), mn);
            prop_assert_eq!(q.max("x"), mx);
        }
    }

    /// `top_groups_by_count` returns groups in non-increasing size order and
    /// never more than requested.
    #[test]
    fn top_groups_ordered(t in arb_table(), n in 0usize..6) {
        let q = t.query();
        let top = q.top_groups_by_count("g", n);
        prop_assert!(top.len() <= n);
        prop_assert!(top.windows(2).all(|w| w[0].1.count() >= w[1].1.count()));
    }
}
