//! Counterfactual scenarios: what the dataset would have looked like
//! without the war, with edge-only damage, or with core-only damage.
//! These runs isolate the causal structure the paper can only hypothesize
//! about (§5: "most of the performance instability occurs due to damage at
//! the edge of the network").

use std::sync::OnceLock;
use ukraine_ndt::analysis::{table1_cities, table2_paths};
use ukraine_ndt::mlab::Scenario;
use ukraine_ndt::prelude::*;

fn run(scenario: Scenario) -> StudyData {
    StudyData::generate(SimConfig {
        scale: 0.1,
        seed: 404,
        scenario,
        simulate_2021: false,
        ..SimConfig::default()
    })
}

fn historical() -> &'static StudyData {
    static D: OnceLock<StudyData> = OnceLock::new();
    D.get_or_init(|| run(Scenario::HISTORICAL))
}

fn no_war() -> &'static StudyData {
    static D: OnceLock<StudyData> = OnceLock::new();
    D.get_or_init(|| run(Scenario::NO_WAR))
}

fn edge_only() -> &'static StudyData {
    static D: OnceLock<StudyData> = OnceLock::new();
    D.get_or_init(|| run(Scenario::EDGE_ONLY))
}

fn core_only() -> &'static StudyData {
    static D: OnceLock<StudyData> = OnceLock::new();
    D.get_or_init(|| run(Scenario::CORE_ONLY))
}

fn national_loss_ratio(data: &StudyData) -> f64 {
    let t = table1_cities::compute(data).expect("clean corpus computes");
    let n = t.row("National").unwrap();
    n.loss_wartime / n.loss_prewar
}

#[test]
fn no_war_shows_no_degradation() {
    let ratio = national_loss_ratio(no_war());
    assert!((0.8..1.2).contains(&ratio), "NoWar loss ratio = {ratio}");
    let t = table1_cities::compute(no_war()).expect("clean corpus computes");
    let n = t.row("National").unwrap();
    assert!(
        !n.loss_test.significant() || (n.loss_wartime / n.loss_prewar - 1.0).abs() < 0.1,
        "phantom war detected: p = {}",
        n.loss_test.p
    );
    // Mariupol keeps its tests.
    let m = t.row("Mariupol").unwrap();
    assert!((m.tests_wartime as f64) > 0.5 * m.tests_prewar as f64);
}

#[test]
fn edge_damage_carries_most_of_the_loss_degradation() {
    // The paper's hypothesis, made quantitative: the edge-only counterfactual
    // reproduces most of the historical loss increase, the core-only one
    // very little.
    let hist = national_loss_ratio(historical());
    let edge = national_loss_ratio(edge_only());
    let core = national_loss_ratio(core_only());
    assert!(hist > 1.5, "historical loss ratio = {hist}");
    assert!(edge > 0.75 * hist, "edge-only ratio {edge} vs historical {hist}");
    assert!(core < 1.0 + 0.5 * (hist - 1.0), "core-only ratio {core} vs historical {hist}");
}

#[test]
fn path_churn_needs_the_core_damage() {
    // Conversely, Table 2's wartime path-diversity jump is a *core*
    // phenomenon: it survives in core-only and shrinks without it.
    let paths = |data: &StudyData| {
        let t = table2_paths::compute(data, 1000).expect("clean corpus computes");
        t.row(Period::Wartime2022).paths_per_conn - t.row(Period::Prewar2022).paths_per_conn
    };
    let hist = paths(historical());
    let core = paths(core_only());
    let none = paths(no_war());
    assert!(hist > 0.4, "historical jump = {hist}");
    assert!(core > 0.5 * hist, "core-only jump {core} vs historical {hist}");
    assert!(none < 0.5 * hist, "no-war jump {none} should be small");
}
