//! Per-RTT fluid simulation of a bulk transfer.
//!
//! The platform simulator uses closed-form steady-state response functions
//! ([`crate::model`]) because it runs a million transfers. This module is
//! the *validation* of that substitution (see `DESIGN.md`): a round-by-
//! round fluid model of the actual congestion-control dynamics — slow
//! start, loss events, CUBIC's cubic window growth, BBR's bandwidth-probe
//! cruise — whose long-run throughput the response functions must agree
//! with. The agreement tests live at the bottom of this file; an ablation
//! bench compares their costs.

use crate::model::{CongestionControl, BBR_LOSS_KNEE, MSS_BYTES};
use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};

/// Outcome of a fluid-simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidOutcome {
    /// Goodput over the whole transfer, Mbps.
    pub mean_tput_mbps: f64,
    /// Number of congestion-window reductions experienced.
    pub loss_events: u32,
    /// Number of RTT rounds simulated.
    pub rounds: u32,
}

/// Per-RTT fluid simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidSim {
    pub cca: CongestionControl,
    /// Transfer duration in seconds.
    pub duration_s: f64,
}

impl FluidSim {
    /// Creates a simulator.
    ///
    /// # Panics
    /// Panics on a non-positive duration.
    pub fn new(cca: CongestionControl, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "duration must be positive");
        Self { cca, duration_s }
    }

    /// Simulates one transfer over a path with base RTT `rtt_ms`,
    /// bottleneck `bottleneck_mbps` and random per-packet loss `p`.
    ///
    /// # Panics
    /// Panics on non-positive RTT/bandwidth or `p` outside `[0, 1)`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        rtt_ms: f64,
        bottleneck_mbps: f64,
        p: f64,
        rng: &mut R,
    ) -> FluidOutcome {
        assert!(rtt_ms > 0.0 && bottleneck_mbps > 0.0, "path parameters must be positive");
        assert!((0.0..1.0).contains(&p), "loss must be in [0, 1), got {p}");
        let rtt_s = rtt_ms / 1e3;
        let bdp_pkts = (bottleneck_mbps * 1e6 / 8.0 / MSS_BYTES) * rtt_s;

        let mut t = 0.0f64;
        let mut delivered_pkts = 0.0f64;
        let mut rounds = 0u32;
        let mut loss_events = 0u32;

        // Common state.
        let mut cwnd = 10.0f64; // IW10
        let mut in_slow_start = true;
        // CUBIC state.
        let mut w_max = 0.0f64;
        let mut epoch_start = f64::NAN;
        const C: f64 = 0.4;
        const BETA: f64 = 0.7;

        while t < self.duration_s {
            rounds += 1;
            // Queueing delay once cwnd exceeds the BDP (single bottleneck
            // queue, fluid approximation).
            let queue_pkts = (cwnd - bdp_pkts).max(0.0);
            let rtt_now = rtt_s + queue_pkts * MSS_BYTES * 8.0 / (bottleneck_mbps * 1e6);
            // Deliverable this round: limited by both cwnd and the pipe.
            let sendable = cwnd.min(bdp_pkts.max(1.0) * rtt_now / rtt_s);
            delivered_pkts += sendable * (1.0 - p);
            // Loss event this round?
            let p_event = 1.0 - (1.0 - p).powf(sendable.max(1.0));
            let lost = p > 0.0 && rng.random::<f64>() < p_event;

            match self.cca {
                CongestionControl::Cubic => {
                    if lost {
                        loss_events += 1;
                        w_max = cwnd;
                        cwnd = (cwnd * BETA).max(2.0);
                        epoch_start = t;
                        in_slow_start = false;
                    } else if in_slow_start {
                        cwnd *= 2.0;
                        if cwnd >= bdp_pkts.max(16.0) {
                            in_slow_start = false;
                            w_max = cwnd;
                            epoch_start = t;
                        }
                    } else {
                        // W(t) = C (t - K)^3 + w_max, K = cbrt(w_max β' / C).
                        let k = (w_max * (1.0 - BETA) / C).cbrt();
                        let te = t - epoch_start + rtt_now;
                        cwnd = (C * (te - k).powi(3) + w_max).max(2.0);
                    }
                }
                CongestionControl::Bbr => {
                    if in_slow_start {
                        // Startup: double until the bandwidth estimate stops
                        // growing (we reach the pipe).
                        cwnd *= 2.0;
                        if cwnd >= 2.0 * bdp_pkts.max(4.0) {
                            in_slow_start = false;
                        }
                    } else {
                        // ProbeBW cruise: cwnd pinned near 2 BDP; random
                        // loss does not reduce it below the knee, above the
                        // knee the bandwidth samples starve and the
                        // estimator collapses.
                        cwnd = 2.0 * bdp_pkts.max(4.0);
                        if p > BBR_LOSS_KNEE && lost {
                            loss_events += 1;
                            cwnd = (cwnd * 0.5).max(4.0);
                        }
                    }
                }
            }
            t += rtt_now;
        }
        FluidOutcome {
            mean_tput_mbps: delivered_pkts * MSS_BYTES * 8.0 / 1e6 / self.duration_s,
            loss_events,
            rounds,
        }
    }

    /// Mean throughput over `n` seeded runs (validation helper).
    pub fn mean_tput<R: Rng + ?Sized>(
        &self,
        rtt_ms: f64,
        bottleneck_mbps: f64,
        p: f64,
        n: usize,
        rng: &mut R,
    ) -> f64 {
        (0..n).map(|_| self.run(rtt_ms, bottleneck_mbps, p, rng).mean_tput_mbps).sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{bbr_rate_mbps, cubic_rate_mbps};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lossless_transfer_fills_the_pipe() {
        let sim = FluidSim::new(CongestionControl::Bbr, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let out = sim.run(20.0, 50.0, 0.0, &mut rng);
        assert!(out.mean_tput_mbps > 40.0, "tput = {}", out.mean_tput_mbps);
        assert!(out.mean_tput_mbps <= 50.0 * 1.05);
        assert_eq!(out.loss_events, 0);
        assert!(out.rounds > 100);
    }

    /// The DESIGN.md substitution check: the closed-form response functions
    /// the platform uses agree with the dynamic fluid model across the
    /// operating grid the simulator visits.
    #[test]
    fn response_functions_agree_with_fluid_dynamics() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(rtt, bw, p) in &[
            (15.0, 40.0, 0.002),
            (30.0, 60.0, 0.01),
            (40.0, 30.0, 0.03),
            (60.0, 100.0, 0.005),
        ] {
            // BBR: fluid vs bottleneck*(1-p).
            let fluid_bbr =
                FluidSim::new(CongestionControl::Bbr, 10.0).mean_tput(rtt, bw, p, 30, &mut rng);
            let model_bbr = bbr_rate_mbps(bw, p);
            let ratio = fluid_bbr / model_bbr;
            assert!((0.6..1.4).contains(&ratio), "BBR rtt={rtt} bw={bw} p={p}: fluid {fluid_bbr} vs model {model_bbr}");

            // CUBIC: fluid vs RFC 8312 response (capped by the pipe).
            let fluid_cubic =
                FluidSim::new(CongestionControl::Cubic, 10.0).mean_tput(rtt, bw, p, 30, &mut rng);
            let model_cubic = cubic_rate_mbps(rtt, p).min(bw);
            let ratio = fluid_cubic / model_cubic;
            assert!(
                (0.4..2.0).contains(&ratio),
                "CUBIC rtt={rtt} bw={bw} p={p}: fluid {fluid_cubic} vs model {model_cubic}"
            );
        }
    }

    #[test]
    fn fluid_bbr_is_loss_tolerant_fluid_cubic_is_not() {
        let mut rng = StdRng::seed_from_u64(3);
        let bbr = FluidSim::new(CongestionControl::Bbr, 10.0).mean_tput(30.0, 80.0, 0.02, 30, &mut rng);
        let cubic =
            FluidSim::new(CongestionControl::Cubic, 10.0).mean_tput(30.0, 80.0, 0.02, 30, &mut rng);
        assert!(bbr > 2.0 * cubic, "bbr {bbr} vs cubic {cubic}");
    }

    #[test]
    fn cubic_registers_loss_events() {
        let mut rng = StdRng::seed_from_u64(4);
        let out = FluidSim::new(CongestionControl::Cubic, 10.0).run(20.0, 50.0, 0.02, &mut rng);
        assert!(out.loss_events > 3, "loss events = {}", out.loss_events);
    }

    #[test]
    fn more_loss_never_helps() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let lo = FluidSim::new(CongestionControl::Cubic, 10.0).mean_tput(25.0, 60.0, 0.005, 40, &mut r1);
        let hi = FluidSim::new(CongestionControl::Cubic, 10.0).mean_tput(25.0, 60.0, 0.05, 40, &mut r2);
        assert!(lo > hi, "lo {lo} vs hi {hi}");
    }

    #[test]
    fn deterministic_under_seed() {
        let sim = FluidSim::new(CongestionControl::Bbr, 5.0);
        let a = sim.run(20.0, 50.0, 0.01, &mut StdRng::seed_from_u64(6));
        let b = sim.run(20.0, 50.0, 0.01, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn rejects_bad_loss() {
        let mut rng = StdRng::seed_from_u64(7);
        FluidSim::new(CongestionControl::Bbr, 1.0).run(10.0, 10.0, 1.0, &mut rng);
    }
}
