//! Binary-level CLI contract tests: exit codes and stderr for bad flags,
//! and the degraded-but-successful paths (`--faults severe` must exit 0
//! with coverage annotations, not crash).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ukraine-ndt"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ndt-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn no_arguments_prints_usage_and_exits_nonzero() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("usage:"), "stderr: {}", stderr(&out));
}

#[test]
fn unknown_command_prints_usage_and_exits_nonzero() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn bad_flags_exit_nonzero_with_usage() {
    for bad in [
        vec!["report", "--scale"],             // missing value
        vec!["report", "--scale", "0"],        // zero scale
        vec!["report", "--scale", "-2"],       // negative scale
        vec!["report", "--scale", "inf"],      // non-finite scale
        vec!["report", "--scale", "1e999"],    // overflows f64 to +inf
        vec!["report", "--scale", "NaN"],      // NaN scale
        vec!["report", "--seed", "twelve"],    // non-numeric seed
        vec!["report", "--scenario", "blitz"], // unknown scenario
        vec!["report", "--faults", "mega"],    // unknown fault plan
        vec!["map", "--date", "2022-02-30"],   // invalid calendar day
        vec!["report", "--bogus", "1"],        // unknown flag
    ] {
        let out = run(&bad);
        assert_eq!(out.status.code(), Some(1), "args {bad:?} should be rejected");
        assert!(stderr(&out).contains("usage:"), "args {bad:?} should print usage");
    }
}

#[test]
fn map_prints_the_activity_snapshot() {
    let out = run(&["map", "--date", "2022-03-15"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(!stdout(&out).is_empty());
}

#[test]
fn report_with_severe_faults_exits_zero_with_coverage() {
    let out = run(&["report", "--scale", "0.01", "--faults", "severe"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Coverage"), "degraded run still reports coverage");
    assert!(!stderr(&out).contains("FAILED"), "data faults are not stage failures");
}

// ---------------------------------------------------------------------
// The exit-code contract (documented in README.md): 0 = clean success,
// 1 = fatal error (bad flags, missing inputs), 3 = completed but
// degraded (failed stages / quarantined shards). One test per leg,
// through the real binary.
// ---------------------------------------------------------------------

/// Builds a tiny columnar store through the binary itself.
fn generate_store(dir: &std::path::Path) -> PathBuf {
    let store = dir.join("store");
    let out = run(&[
        "generate", "--format", "columnar", "--scale", "0.01", "--seed", "7",
        "--out", &store.display().to_string(),
    ]);
    assert_eq!(out.status.code(), Some(0), "store generate: {}", stderr(&out));
    store
}

#[test]
fn exit_contract_clean_report_is_zero() {
    let out = run(&["report", "--scale", "0.01"]);
    assert_eq!(out.status.code(), Some(0), "clean run exits 0; stderr: {}", stderr(&out));
}

#[test]
fn exit_contract_missing_store_is_fatal_one() {
    let d = tmpdir("exit-fatal");
    let out = run(&["report", "--from-store", &d.join("nope").display().to_string()]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a store without a manifest is fatal (nothing to degrade over); stderr: {}",
        stderr(&out)
    );
}

#[test]
fn exit_contract_quarantined_shard_is_partial_three() {
    let d = tmpdir("exit-partial");
    std::fs::create_dir_all(&d).expect("mkdir");
    let store = generate_store(&d);
    // Truncate one shard: the loader quarantines it, serves the
    // survivors, and the run completes degraded.
    let shard = std::fs::read_dir(&store)
        .expect("store dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "ndts"))
        .expect("a shard file");
    let bytes = std::fs::read(&shard).expect("read shard");
    std::fs::write(&shard, &bytes[..bytes.len() / 2]).expect("truncate shard");

    let out = run(&["report", "--from-store", &store.display().to_string()]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "degraded-but-completed exits 3; stderr: {}",
        stderr(&out)
    );
    assert!(
        !stdout(&out).is_empty(),
        "the degraded report is still produced on stdout"
    );
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn exit_contract_serve_drain_on_clean_store_is_zero() {
    let d = tmpdir("exit-serve");
    std::fs::create_dir_all(&d).expect("mkdir");
    let store = generate_store(&d);
    // --shutdown drains on a timer (no stdin choreography needed): a
    // clean store served and drained without incident exits 0.
    let out = run(&[
        "serve", "--store", &store.display().to_string(), "--workers", "1",
        "--shutdown", "0.3",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean serve drain exits 0; stderr: {}",
        stderr(&out)
    );
    assert!(
        stdout(&out).contains("SERVE_ADDR="),
        "serve must announce its address; stdout: {}",
        stdout(&out)
    );
    assert!(stderr(&out).contains("drained:"), "stderr: {}", stderr(&out));
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn export_with_severe_faults_exits_zero_and_derives_artifact_count() {
    let d = tmpdir("severe-export");
    let out = run(&["export", "--scale", "0.01", "--faults", "severe", "--out", &d.display().to_string()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    let written = std::fs::read_dir(&d)
        .expect("out dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_file())
        .count();
    assert!(
        err.contains(&format!("wrote {written} artifacts")),
        "reported count must match the {written} files actually written; stderr: {err}"
    );
    let _ = std::fs::remove_dir_all(&d);
}
